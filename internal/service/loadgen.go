package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadReport summarizes one load-generation phase against a running
// server: request counts, wall-clock throughput, and latency percentiles.
type LoadReport struct {
	Name        string
	Requests    int
	Errors      int
	Concurrency int
	Duration    time.Duration
	P50, P90    time.Duration
	P99         time.Duration
	// Shed counts well-formed load-shedding answers: 503 with a
	// Retry-After header. A 503 *without* Retry-After is a protocol
	// violation and counts as an error instead, as does any other 5xx —
	// overload must be shed cleanly or not at all.
	Shed int
	// FirstError carries the first non-OK body observed, for diagnostics.
	FirstError string
}

// ThroughputRPS returns successful requests per wall-clock second.
func (r *LoadReport) ThroughputRPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests-r.Errors-r.Shed) / r.Duration.Seconds()
}

// ErrorRate is the fraction of requests that failed (sheds excluded).
func (r *LoadReport) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// ShedRate is the fraction of requests the server shed with 503.
func (r *LoadReport) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// String renders the report as one human line.
func (r *LoadReport) String() string {
	return fmt.Sprintf("%-12s %4d reqs × %d workers in %8s  →  %8.2f req/s   p50 %s  p90 %s  p99 %s  (%.0f%% errors, %.0f%% shed)",
		r.Name, r.Requests, r.Concurrency, r.Duration.Round(time.Millisecond), r.ThroughputRPS(),
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		100*r.ErrorRate(), 100*r.ShedRate())
}

// Target is one request of a load stream: a JSON body POSTed to a URL.
type Target struct {
	URL  string
	Body []byte
}

// Hammer fires every target as a POST (JSON) from `concurrency` workers
// and reports throughput and latency percentiles. Targets are dealt to
// workers round-robin; a non-2xx response or transport error counts as an
// error but does not stop the run.
func Hammer(name string, client *http.Client, targets []Target, concurrency int) *LoadReport {
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > len(targets) {
		concurrency = len(targets)
	}
	latencies := make([]time.Duration, len(targets))
	errs := make([]string, len(targets))
	sheds := make([]bool, len(targets))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(targets); i += concurrency {
				t0 := time.Now()
				resp, err := client.Post(targets[i].URL, "application/json", bytes.NewReader(targets[i].Body))
				if err != nil {
					errs[i] = err.Error()
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					latencies[i] = time.Since(t0)
				case resp.StatusCode == http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						errs[i] = fmt.Sprintf("shed without Retry-After: %s", bytes.TrimSpace(body))
					} else {
						sheds[i] = true
					}
				default:
					errs[i] = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
				}
			}
		}(w)
	}
	wg.Wait()
	rep := &LoadReport{Name: name, Requests: len(targets), Concurrency: concurrency, Duration: time.Since(start)}
	var ok []time.Duration
	for i, l := range latencies {
		if errs[i] != "" {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = errs[i]
			}
			continue
		}
		if sheds[i] {
			rep.Shed++
			continue
		}
		ok = append(ok, l)
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
	rep.P50 = percentile(ok, 0.50)
	rep.P90 = percentile(ok, 0.90)
	rep.P99 = percentile(ok, 0.99)
	return rep
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// QueryTargets marshals one target per query, all aimed at url.
func QueryTargets(url string, queries []Query) ([]Target, error) {
	out := make([]Target, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(q)
		if err != nil {
			return nil, err
		}
		out[i] = Target{URL: url, Body: b}
	}
	return out, nil
}
