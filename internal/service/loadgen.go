package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ironhide/internal/scenario"
)

// LoadReport summarizes one load-generation phase against a running
// server: request counts, wall-clock throughput, and latency percentiles.
type LoadReport struct {
	Name        string
	Requests    int
	Errors      int
	Concurrency int
	Duration    time.Duration
	P50, P90    time.Duration
	P99         time.Duration
	// Shed counts well-formed load-shedding answers: 503 with a
	// Retry-After header. A 503 *without* Retry-After is a protocol
	// violation and counts as an error instead, as does any other 5xx —
	// overload must be shed cleanly or not at all.
	Shed int
	// Failovers counts shard attempts abandoned in favor of a replica
	// (routed streams only). A failover is NOT an error: the request
	// succeeded, it just took more than one shard to get there — the two
	// must stay separately visible or a dying shard hides inside the
	// error rate.
	Failovers int
	// StreamEvents counts engine phase events delivered across all
	// streamed requests (streamed scenario phases only; 0 elsewhere).
	StreamEvents int64
	// PerShard breaks successful requests down by the shard that answered
	// (from the X-Ironhide-Shard header; empty for non-fleet servers).
	// The fleet selftest asserts routing balance on it.
	PerShard map[string]*ShardLoad
	// FirstError carries the first non-OK body observed, for diagnostics.
	FirstError string
}

// ShardLoad is one shard's slice of a load phase.
type ShardLoad struct {
	// Requests counts successful responses answered by this shard.
	Requests int `json:"requests"`
	// Hits counts those served from the shard's settled trace cache
	// (X-Ironhide-Cache: hit).
	Hits int `json:"hits"`
	// PeerFetched counts those whose trace came from a fleet peer
	// (X-Ironhide-Cache: peer) — warm capacity that moved, not re-ran.
	PeerFetched int `json:"peer_fetched"`
}

// MaxShardSkew returns the busiest shard's successful-request count over
// the per-shard mean (1 = perfectly balanced; 0 when nothing succeeded or
// the stream was unrouted). The fleet selftest bounds it.
func (r *LoadReport) MaxShardSkew() float64 {
	if len(r.PerShard) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, s := range r.PerShard {
		total += s.Requests
		if s.Requests > max {
			max = s.Requests
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.PerShard))
	return float64(max) / mean
}

// recordShard attributes one successful response to its shard.
func (r *LoadReport) recordShard(shard, src string) {
	if shard == "" {
		return
	}
	if r.PerShard == nil {
		r.PerShard = map[string]*ShardLoad{}
	}
	sl := r.PerShard[shard]
	if sl == nil {
		sl = &ShardLoad{}
		r.PerShard[shard] = sl
	}
	sl.Requests++
	switch src {
	case "hit":
		sl.Hits++
	case "peer":
		sl.PeerFetched++
	}
}

// ThroughputRPS returns successful requests per wall-clock second.
func (r *LoadReport) ThroughputRPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests-r.Errors-r.Shed) / r.Duration.Seconds()
}

// ErrorRate is the fraction of requests that failed (sheds excluded).
func (r *LoadReport) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// ShedRate is the fraction of requests the server shed with 503.
func (r *LoadReport) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// String renders the report as one human line.
func (r *LoadReport) String() string {
	line := fmt.Sprintf("%-12s %4d reqs × %d workers in %8s  →  %8.2f req/s   p50 %s  p90 %s  p99 %s  (%.0f%% errors, %.0f%% shed)",
		r.Name, r.Requests, r.Concurrency, r.Duration.Round(time.Millisecond), r.ThroughputRPS(),
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		100*r.ErrorRate(), 100*r.ShedRate())
	if r.Failovers > 0 {
		line += fmt.Sprintf(", %d failovers", r.Failovers)
	}
	return line
}

// ShardLine renders the per-shard distribution as one human line, shards
// sorted by name ("" when the stream was unrouted).
func (r *LoadReport) ShardLine() string {
	if len(r.PerShard) == 0 {
		return ""
	}
	shards := make([]string, 0, len(r.PerShard))
	for s := range r.PerShard {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	parts := make([]string, len(shards))
	for i, s := range shards {
		sl := r.PerShard[s]
		parts[i] = fmt.Sprintf("%s: %d reqs (%d hit, %d peer)", s, sl.Requests, sl.Hits, sl.PeerFetched)
	}
	return strings.Join(parts, "  ")
}

// Target is one request of a load stream: a JSON body POSTed to a URL.
type Target struct {
	URL  string
	Body []byte
}

// Hammer fires every target as a POST (JSON) from `concurrency` workers
// and reports throughput and latency percentiles. Targets are dealt to
// workers round-robin; a non-2xx response or transport error counts as an
// error but does not stop the run.
func Hammer(name string, client *http.Client, targets []Target, concurrency int) *LoadReport {
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > len(targets) {
		concurrency = len(targets)
	}
	latencies := make([]time.Duration, len(targets))
	errs := make([]string, len(targets))
	sheds := make([]bool, len(targets))
	shards := make([]string, len(targets))
	srcs := make([]string, len(targets))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(targets); i += concurrency {
				t0 := time.Now()
				resp, err := client.Post(targets[i].URL, "application/json", bytes.NewReader(targets[i].Body))
				if err != nil {
					errs[i] = err.Error()
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					latencies[i] = time.Since(t0)
					shards[i] = resp.Header.Get("X-Ironhide-Shard")
					srcs[i] = resp.Header.Get("X-Ironhide-Cache")
				case resp.StatusCode == http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						errs[i] = fmt.Sprintf("shed without Retry-After: %s", bytes.TrimSpace(body))
					} else {
						sheds[i] = true
					}
				default:
					errs[i] = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
				}
			}
		}(w)
	}
	wg.Wait()
	rep := &LoadReport{Name: name, Requests: len(targets), Concurrency: concurrency, Duration: time.Since(start)}
	var ok []time.Duration
	for i, l := range latencies {
		if errs[i] != "" {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = errs[i]
			}
			continue
		}
		if sheds[i] {
			rep.Shed++
			continue
		}
		rep.recordShard(shards[i], srcs[i])
		ok = append(ok, l)
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
	rep.P50 = percentile(ok, 0.50)
	rep.P90 = percentile(ok, 0.90)
	rep.P99 = percentile(ok, 0.99)
	return rep
}

// RoutedTarget is one request of a routed load stream: a query aimed at
// a fleet endpoint through a Router.
type RoutedTarget struct {
	Path  string
	Query Query
}

// HammerRouter fires every target through the consistent-hash router from
// `concurrency` workers, recording which shard answered, the cache source
// per response, and failovers separately from errors — a request that
// rode over to a replica after its owner died is a success with a
// failover, not an error. Bodies returns each successful raw response
// body (index-aligned with targets; nil on error), so callers can diff
// them against an oracle.
func HammerRouter(name string, rt *Router, targets []RoutedTarget, concurrency int) (*LoadReport, [][]byte) {
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > len(targets) {
		concurrency = len(targets)
	}
	latencies := make([]time.Duration, len(targets))
	errs := make([]string, len(targets))
	shards := make([]string, len(targets))
	srcs := make([]string, len(targets))
	failovers := make([]int, len(targets))
	bodies := make([][]byte, len(targets))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(targets); i += concurrency {
				t0 := time.Now()
				var raw json.RawMessage
				res, err := rt.Query(context.Background(), targets[i].Path, targets[i].Query, &raw)
				failovers[i] = res.Failovers
				if err != nil {
					errs[i] = err.Error()
					continue
				}
				latencies[i] = time.Since(t0)
				shards[i] = res.Shard
				if res.Header != nil {
					srcs[i] = res.Header.Get("X-Ironhide-Cache")
				}
				bodies[i] = raw
			}
		}(w)
	}
	wg.Wait()
	rep := &LoadReport{Name: name, Requests: len(targets), Concurrency: concurrency, Duration: time.Since(start)}
	var ok []time.Duration
	for i, l := range latencies {
		rep.Failovers += failovers[i]
		if errs[i] != "" {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = errs[i]
			}
			continue
		}
		rep.recordShard(shards[i], srcs[i])
		ok = append(ok, l)
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
	rep.P50 = percentile(ok, 0.50)
	rep.P90 = percentile(ok, 0.90)
	rep.P99 = percentile(ok, 0.99)
	return rep, bodies
}

// HammerScenarioStream fires every scenario request as a routed stream
// from `concurrency` workers, counting delivered engine events and
// reconstructing each terminal report's blocking body (index-aligned with
// targets; nil on error) so callers can diff streamed answers against
// blocking oracles. Mid-stream deaths (typed StreamError / truncation)
// count as errors — a stream must end in a terminal chunk or fail loudly.
func HammerScenarioStream(name string, rt *Router, targets []ScenarioRequest, concurrency int) (*LoadReport, [][]byte) {
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > len(targets) {
		concurrency = len(targets)
	}
	latencies := make([]time.Duration, len(targets))
	errs := make([]string, len(targets))
	shards := make([]string, len(targets))
	srcs := make([]string, len(targets))
	failovers := make([]int, len(targets))
	bodies := make([][]byte, len(targets))
	var events atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(targets); i += concurrency {
				t0 := time.Now()
				out, res, err := rt.ScenarioStream(context.Background(), targets[i],
					func(scenario.StreamEvent) { events.Add(1) })
				failovers[i] = res.Failovers
				if err != nil {
					errs[i] = err.Error()
					continue
				}
				latencies[i] = time.Since(t0)
				shards[i] = res.Shard
				srcs[i] = out.Cache
				bodies[i] = out.Body
			}
		}(w)
	}
	wg.Wait()
	rep := &LoadReport{Name: name, Requests: len(targets), Concurrency: concurrency, Duration: time.Since(start),
		StreamEvents: events.Load()}
	var ok []time.Duration
	for i, l := range latencies {
		rep.Failovers += failovers[i]
		if errs[i] != "" {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = errs[i]
			}
			continue
		}
		rep.recordShard(shards[i], srcs[i])
		ok = append(ok, l)
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
	rep.P50 = percentile(ok, 0.50)
	rep.P90 = percentile(ok, 0.90)
	rep.P99 = percentile(ok, 0.99)
	return rep, bodies
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// QueryTargets marshals one target per query, all aimed at url.
func QueryTargets(url string, queries []Query) ([]Target, error) {
	out := make([]Target, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(q)
		if err != nil {
			return nil, err
		}
		out[i] = Target{URL: url, Body: b}
	}
	return out, nil
}
