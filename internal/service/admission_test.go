package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A nil gate (admission control off) admits everything.
func TestNilGateAdmitsEverything(t *testing.T) {
	var g *gate
	for i := 0; i < 100; i++ {
		if err := g.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	g.release()
	if st := g.stats(); st != (AdmissionStats{}) {
		t.Fatalf("nil gate stats %+v", st)
	}
}

// Slots fill, the queue holds the overflow, and everything beyond is shed
// immediately; a release hands the slot to a queued waiter.
func TestGateQueueAndShed(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	queued := make(chan error, 1)
	go func() { queued <- g.acquire(context.Background()) }()
	for g.stats().Waiting < 1 {
		time.Sleep(time.Millisecond)
	}

	// Queue is full: the next caller is shed without blocking.
	start := time.Now()
	if err := g.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire over full queue: %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shed took %v, want immediate", waited)
	}

	g.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	st := g.stats()
	if st.Admitted != 2 || st.Shed != 1 || st.InUse != 1 || st.Waiting != 0 {
		t.Fatalf("stats %+v: want 2 admitted, 1 shed, 1 in use", st)
	}
	g.release()
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("stats %+v after final release", st)
	}
}

// A deadline that expires while queued is reported as overload (the
// request never started; a retry later is the right move) and still
// carries the ctx error for diagnostics.
func TestGateDeadlineWhileQueued(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := g.acquire(ctx)
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued deadline: %v, want ErrOverloaded joined with DeadlineExceeded", err)
	}
	st := g.stats()
	if st.Shed != 1 || st.Waiting != 0 {
		t.Fatalf("stats %+v: want the expired waiter counted as shed and off the queue", st)
	}
	if errorStatus(err) != 503 {
		t.Fatalf("errorStatus(%v) = %d, want 503", err, errorStatus(err))
	}
}
