package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Shed responses are retried (honoring Retry-After) until the server has
// room again.
func TestClientRetriesShed(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusServiceUnavailable, ErrOverloaded)
			return
		}
		fmt.Fprintln(w, `{"ok":true}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), MaxRetries: 3, Backoff: time.Millisecond}
	var out map[string]bool
	if _, err := c.PostJSON(context.Background(), "/v1/run", Query{App: "a"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 sheds + 1 success)", got)
	}
	if !out["ok"] {
		t.Fatalf("decoded %v", out)
	}
}

// Hard failures (here 500) are not retried: they would not get better,
// and hammering a broken server makes outages worse.
func TestClientDoesNotRetryHardErrors(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusInternalServerError, errors.New("broken"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), MaxRetries: 3, Backoff: time.Millisecond}
	_, err := c.PostJSON(context.Background(), "/v1/run", Query{App: "a"}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want a 500 StatusError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", got)
	}
}

// A bounded shed storm exhausts the retry budget and surfaces the 503.
func TestClientGivesUpAfterBudget(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusServiceUnavailable, ErrOverloaded)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), MaxRetries: 2, Backoff: time.Millisecond}
	_, err := c.PostJSON(context.Background(), "/v1/run", Query{App: "a"}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 try + 2 retries)", got)
	}
}

// WaitReady rides through refused connections and draining answers until
// the server reports ready — the restart-detection primitive of the
// chaos harness.
func TestClientWaitReady(t *testing.T) {
	var ready atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), Backoff: time.Millisecond}
	if err := c.WaitReady(context.Background(), 200*time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded against a draining server")
	}
	ready.Store(true)
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// The Retry-After clamp bugfix: the hint is server-controlled input, so a
// hostile or buggy "Retry-After: 86400" must be clamped to MaxRetryDelay
// and never past the context's remaining deadline. Fake clock, no real
// sleeping.
func TestClientClampsRetryAfter(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	resp := func(retryAfter string) *http.Response {
		h := http.Header{}
		h.Set("Retry-After", retryAfter)
		return &http.Response{Header: h}
	}
	ctxWith := func(remain time.Duration) context.Context {
		ctx, cancel := context.WithDeadline(context.Background(), base.Add(remain))
		t.Cleanup(cancel)
		return ctx
	}

	cases := []struct {
		name   string
		client Client
		ctx    context.Context
		resp   *http.Response
		want   time.Duration
	}{
		{"honors small hints verbatim",
			Client{}, context.Background(), resp("0.250"), 250 * time.Millisecond},
		{"clamps a day-long hint to the default cap",
			Client{}, context.Background(), resp("86400"), 30 * time.Second},
		{"clamps to a configured cap",
			Client{MaxRetryDelay: 2 * time.Second}, context.Background(), resp("86400"), 2 * time.Second},
		{"cap disabled honors the hint",
			Client{MaxRetryDelay: -1}, context.Background(), resp("86400"), 86400 * time.Second},
		{"clamps to the deadline's remainder",
			Client{}, ctxWith(400 * time.Millisecond), resp("5"), 400 * time.Millisecond},
		{"expired deadline sleeps zero",
			Client{}, ctxWith(-time.Second), resp("5"), 0},
		{"backoff also respects the deadline",
			Client{Backoff: 10 * time.Second}, ctxWith(100 * time.Millisecond), nil, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		c := tc.client
		c.now = func() time.Time { return base }
		if got := c.retryDelay(tc.ctx, 0, tc.resp); got != tc.want {
			t.Fatalf("%s: retryDelay = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// End-to-end with a recording sleep seam: a shed loop against a server
// demanding hour-long waits completes promptly, every recorded sleep
// clamped to the configured cap.
func TestClientShedLoopClamped(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3600")
			writeError(w, http.StatusServiceUnavailable, ErrOverloaded)
			return
		}
		fmt.Fprintln(w, `{"ok":true}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), MaxRetries: 3, MaxRetryDelay: 50 * time.Millisecond,
		sleepFn: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		}}
	if _, err := c.PostJSON(context.Background(), "/v1/run", Query{App: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(slept))
	}
	for i, d := range slept {
		if d != 50*time.Millisecond {
			t.Fatalf("sleep %d was %v, want the 50ms cap", i, d)
		}
	}
}
