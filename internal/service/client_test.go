package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Shed responses are retried (honoring Retry-After) until the server has
// room again.
func TestClientRetriesShed(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusServiceUnavailable, ErrOverloaded)
			return
		}
		fmt.Fprintln(w, `{"ok":true}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), MaxRetries: 3, Backoff: time.Millisecond}
	var out map[string]bool
	if _, err := c.PostJSON(context.Background(), "/v1/run", Query{App: "a"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 sheds + 1 success)", got)
	}
	if !out["ok"] {
		t.Fatalf("decoded %v", out)
	}
}

// Hard failures (here 500) are not retried: they would not get better,
// and hammering a broken server makes outages worse.
func TestClientDoesNotRetryHardErrors(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusInternalServerError, errors.New("broken"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), MaxRetries: 3, Backoff: time.Millisecond}
	_, err := c.PostJSON(context.Background(), "/v1/run", Query{App: "a"}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want a 500 StatusError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", got)
	}
}

// A bounded shed storm exhausts the retry budget and surfaces the 503.
func TestClientGivesUpAfterBudget(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusServiceUnavailable, ErrOverloaded)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), MaxRetries: 2, Backoff: time.Millisecond}
	_, err := c.PostJSON(context.Background(), "/v1/run", Query{App: "a"}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 try + 2 retries)", got)
	}
}

// WaitReady rides through refused connections and draining answers until
// the server reports ready — the restart-detection primitive of the
// chaos harness.
func TestClientWaitReady(t *testing.T) {
	var ready atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HTTP: ts.Client(), Backoff: time.Millisecond}
	if err := c.WaitReady(context.Background(), 200*time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded against a draining server")
	}
	ready.Store(true)
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
}
