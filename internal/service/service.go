// Package service implements ironhide-serve's HTTP API: an online,
// concurrent simulation-as-a-service front end over the driver. The
// paper's premise is *interactive* applications — per-request isolation
// decisions on a secure multicore — and this package is that loop as a
// long-running daemon: clients ask for a cluster binding or a full
// measured run, the service captures each workload trace at most once
// (bounded LRU keyed by app/scale/seed, singleflight-coalesced so a
// thundering herd of the same query costs one execution) and answers
// every subsequent query by payload-free replay.
//
// Endpoints:
//
//	POST /v1/search  app, model, scale, seed → chosen binding + predicted
//	                 completion and overhead breakdown (spatial models)
//	POST /v1/run     full driver Result JSON, byte-identical to the batch
//	                 path for the same (app, model, scale, seed)
//	POST /v1/grid     a batch of cells fanned out over the runner pool
//	POST /v1/scenario a multi-tenant dynamic-reconfiguration timeline
//	                  (internal/scenario) run over the shared trace cache
//	GET  /v1/status   uptime, in-flight counts, admission/cache/store stats
//	GET  /v1/healthz  process liveness (always 200 while serving)
//	GET  /v1/readyz   load-balancer readiness; 503 once draining
//
// Responses to identical queries are byte-identical (the simulation is
// deterministic and cache metadata travels in the X-Ironhide-Cache
// header, not the body). Per-request deadlines come from the request's
// timeout_ms or the server default; a timed-out capture keeps running in
// the background (bounded by Config.CaptureGrace) and lands in the
// cache, so a retry after a timeout is typically a cheap replay.
//
// Resilience: simulation endpoints pass an admission gate — a semaphore
// with a bounded wait queue — and excess load is shed with 503 plus a
// Retry-After hint instead of queueing without bound. With a Config.Store
// the server is crash-safe: every captured trace is written through to a
// checksummed, fsync'd store and the cache is pre-warmed from it at
// startup, so a restart serves warm replays instead of re-capturing.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ironhide/internal/apps"
	"ironhide/internal/arch"
	"ironhide/internal/driver"
	"ironhide/internal/enclave"
	"ironhide/internal/runner"
	"ironhide/internal/scenario"
	"ironhide/internal/sched"
	"ironhide/internal/store"
	"ironhide/internal/trace"
)

// MaxGridCells bounds one /v1/grid request.
const MaxGridCells = 256

// maxRequestBody bounds one request body; larger bodies get 413. A full
// 256-cell grid request fits in a few tens of kilobytes, so 1 MiB is
// generous without letting a client buffer arbitrary amounts.
const maxRequestBody = 1 << 20

// errBodyTooLarge marks a request body rejected by the size cap.
var errBodyTooLarge = errors.New("request body too large")

// Config tunes the server.
type Config struct {
	// Arch is the simulated machine configuration (required).
	Arch arch.Config
	// CacheTraces bounds the LRU trace cache (default 16).
	CacheTraces int
	// GridWorkers bounds each /v1/grid fan-out (default: all host cores).
	GridWorkers int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 60s; <0 disables the default deadline).
	DefaultTimeout time.Duration
	// Store persists captured traces across restarts (nil = memory only).
	// Captures write through to it; at startup the cache is pre-warmed
	// from it.
	Store *store.Store
	// AdmitCapacity bounds concurrently executing simulation requests
	// (0 = no admission control; status/health endpoints are never gated).
	AdmitCapacity int
	// AdmitQueue bounds requests waiting for an execution slot before
	// load-shedding kicks in (meaningful only with AdmitCapacity > 0).
	AdmitQueue int
	// RetryAfter is the hint attached to shed (503) responses (default 1s).
	RetryAfter time.Duration
	// CaptureGrace bounds how long a capture whose callers have all gone
	// keeps running before it is aborted at a checkpoint. 0 means the
	// default — run to completion, which keeps a post-timeout retry cheap;
	// set a positive bound to reclaim capacity under churn.
	CaptureGrace time.Duration
	// Fleet shards this instance into a cluster (nil = single node). See
	// FleetConfig: peers resolve local misses over GET /v1/trace/{key}
	// before re-capturing, and /v1/readyz + /v1/status become shard-aware.
	Fleet *FleetConfig
}

// Server answers simulation queries over HTTP. It is safe for concurrent
// use; create one with New.
type Server struct {
	cfg     Config
	cache   *TraceCache
	gate    *gate
	persist *persistence
	peers   *peerFetcher
	mux     *http.ServeMux
	start   time.Time
	ready   atomic.Bool

	served                                    atomic.Int64
	inflightSearch, inflightRun, inflightGrid atomic.Int64
	inflightScenario, inflightJoint           atomic.Int64
	// liveCaptures counts actual driver.CaptureTrace invocations —
	// payload executions. Unlike the cache's Captures stat (which counts
	// fill-closure runs, peer fetches included), this is the number the
	// fleet selftest pins at zero to prove a restarted shard re-warmed
	// from peers instead of re-executing.
	liveCaptures atomic.Int64
}

// New builds a Server over the configuration.
func New(cfg Config) *Server {
	if cfg.CacheTraces <= 0 {
		cfg.CacheTraces = 16
	}
	if cfg.GridWorkers <= 0 {
		cfg.GridWorkers = runtime.NumCPU()
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.CaptureGrace == 0 {
		cfg.CaptureGrace = -1
	}
	s := &Server{cfg: cfg, cache: NewTraceCache(cfg.CacheTraces), mux: http.NewServeMux(), start: time.Now()}
	s.cache.SetCaptureGrace(cfg.CaptureGrace)
	s.gate = newGate(cfg.AdmitCapacity, cfg.AdmitQueue)
	if cfg.Store != nil {
		s.persist = &persistence{st: cfg.Store}
		s.persist.prewarm(s.cache)
	}
	if cfg.Fleet != nil {
		s.peers = newPeerFetcher(cfg.Fleet)
	}
	s.ready.Store(true)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/grid", s.handleGrid)
	s.mux.HandleFunc("POST /v1/scenario", s.handleScenario)
	s.mux.HandleFunc("POST /v1/joint", s.handleJoint)
	s.mux.HandleFunc("GET /v1/trace/{key}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/ring", s.handleRing)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.served.Add(1)
	if s.peers != nil {
		// Which shard answered travels on every response, so loadgen and
		// the fleet selftest can assert routing balance and failover
		// without server-side coordination.
		w.Header().Set("X-Ironhide-Shard", s.peers.self)
	}
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the trace cache (the selftest inspects its stats).
func (s *Server) Cache() *TraceCache { return s.cache }

// SetReady flips the /v1/readyz answer. main calls SetReady(false) when a
// drain starts, so load balancers stop routing to this instance before
// in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// Query is the request body of /v1/search and /v1/run, and one cell of a
// /v1/grid batch.
type Query struct {
	// App is a catalog alias ("aes-query") or paper label ("<AES, QUERY>").
	App string `json:"app"`
	// Model is Insecure, SGX, MI6 or IRONHIDE (case-insensitive).
	Model string `json:"model"`
	// Scale multiplies round counts (0 = the app's defaults, i.e. 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Seed makes the run reproducible (0 in a grid cell: the runner
	// derives a deterministic per-cell seed).
	Seed int64 `json:"seed,omitempty"`
	// FixedSecureCores pins the binding, skipping the search.
	FixedSecureCores int `json:"fixed_secure_cores,omitempty"`
	// Optimal swaps the gradient heuristic for the exhaustive oracle.
	Optimal bool `json:"optimal,omitempty"`
	// OptimalStride coarsens the exhaustive search (default 1).
	OptimalStride int `json:"optimal_stride,omitempty"`
	// SearchWorkers parallelizes the Optimal search probes.
	SearchWorkers int `json:"search_workers,omitempty"`
	// TimeoutMs caps this request (0 = the server default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

func (q Query) scale() float64 {
	if q.Scale <= 0 {
		return 1
	}
	return q.Scale
}

// Options maps the query onto the driver's run options.
func (q Query) Options() driver.Options {
	return driver.Options{
		Scale:            q.scale(),
		FixedSecureCores: q.FixedSecureCores,
		Optimal:          q.Optimal,
		OptimalStride:    q.OptimalStride,
		SearchWorkers:    q.SearchWorkers,
		Seed:             q.Seed,
	}
}

// key is the trace-cache identity of the query.
func (q Query) key(entry apps.Entry) TraceKey {
	return TraceKey{App: entry.Name, Scale: q.scale(), Seed: q.Seed}
}

// resolve validates the query's application and model names.
func resolve(q Query) (apps.Entry, func() enclave.Model, error) {
	return Resolve(q.App, q.Model)
}

// Resolve maps an application name (catalog alias or paper label) and a
// model name (case-insensitive) to their factories.
func Resolve(app, model string) (apps.Entry, func() enclave.Model, error) {
	entry, err := apps.Find(app)
	if err != nil {
		return apps.Entry{}, nil, err
	}
	for _, mf := range driver.ModelFactories() {
		if strings.EqualFold(mf().Name(), strings.TrimSpace(model)) {
			return entry, mf, nil
		}
	}
	var names []string
	for _, mf := range driver.ModelFactories() {
		names = append(names, mf().Name())
	}
	return apps.Entry{}, nil, fmt.Errorf("unknown model %q (known: %s)", model, strings.Join(names, ", "))
}

// SearchResponse is /v1/search's body: the chosen binding and the
// predicted completion/breakdown a run at that binding measures.
type SearchResponse struct {
	App              string `json:"app"`
	Model            string `json:"model"`
	SecureCores      int    `json:"secure_cores"`
	Probes           int    `json:"probes"`
	CompletionCycles int64  `json:"completion_cycles"`
	ComputeCycles    int64  `json:"compute_cycles"`
	EntryExitCycles  int64  `json:"entry_exit_cycles"`
	PurgeCycles      int64  `json:"purge_cycles"`
	ReconfigCycles   int64  `json:"reconfig_cycles"`
}

// GridRequest is /v1/grid's body.
type GridRequest struct {
	Cells []Query `json:"cells"`
	// Workers bounds the fan-out (0 = the server's GridWorkers).
	Workers int `json:"workers,omitempty"`
	// TimeoutMs caps the whole batch (0 = the server default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// GridCell is one cell of a /v1/grid response.
type GridCell struct {
	Key    string         `json:"key"`
	Result *driver.Result `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// GridResponse is /v1/grid's body.
type GridResponse struct {
	Cells   []GridCell `json:"cells"`
	Workers int        `json:"workers"`
}

// StatusResponse is /v1/status's body.
type StatusResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Ready         bool    `json:"ready"`
	Served        int64   `json:"served"`
	// LiveCaptures counts payload executions (driver.CaptureTrace calls):
	// the work replay, the store and peer fetch all exist to avoid.
	LiveCaptures int64          `json:"live_captures"`
	InFlight     InFlightStats  `json:"in_flight"`
	Admission    AdmissionStats `json:"admission"`
	Cache        CacheStats     `json:"cache"`
	Store        *StoreStatus   `json:"store,omitempty"`
	Fleet        *FleetStatus   `json:"fleet,omitempty"`
}

// InFlightStats counts requests currently executing per endpoint.
type InFlightStats struct {
	Search   int64 `json:"search"`
	Run      int64 `json:"run"`
	Grid     int64 `json:"grid"`
	Scenario int64 `json:"scenario"`
	Joint    int64 `json:"joint"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// errorStatus maps an execution error to an HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, errBodyTooLarge):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusInternalServerError
	}
}

// writeWorkError maps an execution error onto the wire, attaching the
// Retry-After hint to shed responses so clients back off by the server's
// clock, not a guess.
func (s *Server) writeWorkError(w http.ResponseWriter, err error) {
	status := errorStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfterValue())
	}
	writeError(w, status, err)
}

// retryAfterValue renders the Retry-After hint as fractional seconds
// jittered uniformly over [0.5x, 1.5x) of the configured base. Without
// jitter, every client a shed wave turned away retries in lockstep
// against the same shard and the herd re-forms on schedule; the spread
// de-correlates them. service.Client honors the fractional value exactly;
// a standards-strict client that parses integer seconds still backs off,
// just on a coarser clock.
func (s *Server) retryAfterValue() string {
	secs := s.cfg.RetryAfter.Seconds() * (0.5 + rand.Float64())
	return strconv.FormatFloat(secs, 'f', 3, 64)
}

// decodeBody parses a JSON request body, bounded by maxRequestBody.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("request body exceeds %d bytes: %w", mbe.Limit, errBodyTooLarge)
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// decodeStatus picks the status for a decodeBody error.
func decodeStatus(err error) int {
	if errors.Is(err, errBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// requestContext derives the per-request deadline.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// ctxInterrupt adapts a request context to driver.Options.Interrupt: the
// replay or search stops at its next checkpoint once the request is
// abandoned, instead of completing for a caller that already got a 504.
func ctxInterrupt(ctx context.Context) func() error {
	return ctx.Err
}

// Cache-source header values: how the trace behind a response was
// obtained.
const (
	srcHit     = "hit"     // settled LRU entry (or coalesced onto one capture)
	srcStore   = "store"   // loaded from the persistent store
	srcPeer    = "peer"    // fetched from a fleet peer (capture avoided)
	srcCapture = "capture" // freshly captured
)

// cacheHeader reports how the trace behind a response was obtained.
func cacheHeader(w http.ResponseWriter, src string) {
	w.Header().Set("X-Ironhide-Cache", src)
}

// outcome is one handler's computed response.
type outcome struct {
	body any
	src  string // X-Ironhide-Cache value ("" = no header)
	err  error
}

// admit takes an execution slot for the request, shedding with 503 +
// Retry-After when the server is saturated. On success the slot is held
// until the admitted work settles (respond releases it), not until the
// handler returns — a timed-out request's background work occupies its
// slot until a cancellation checkpoint stops it, which is exactly the
// capacity the gate is protecting.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	if err := s.gate.acquire(ctx); err != nil {
		s.writeWorkError(w, err)
		return false
	}
	return true
}

// respond runs work on its own goroutine and writes its outcome, mapping
// a ctx expiry to 504 while the work finishes in the background (a
// timed-out capture still fills the cache; see the package doc). The
// caller must have passed admit: the admission slot is released when the
// work settles.
func (s *Server) respond(ctx context.Context, w http.ResponseWriter, work func() outcome) {
	ch := make(chan outcome, 1)
	go func() {
		defer s.gate.release()
		ch <- work()
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			s.writeWorkError(w, o.err)
			return
		}
		if o.src != "" {
			cacheHeader(w, o.src)
		}
		writeJSON(w, http.StatusOK, o.body)
	case <-ctx.Done():
		writeError(w, http.StatusGatewayTimeout, ctx.Err())
	}
}

// getTrace fetches the query's trace through four levels: the LRU cache,
// the persistent store (read-through), the key's fleet peers (fetched
// over the store's checksummed framing, CRC re-verified on receipt), then
// a fresh capture. Peer fetches and captures both write through to the
// store, so a warmed shard stays warm across a restart. src reports which
// level answered: srcHit, srcStore, srcPeer or srcCapture.
func (s *Server) getTrace(ctx context.Context, entry apps.Entry, key TraceKey, opts driver.Options) (*trace.Trace, string, error) {
	fromStore, fromPeer := false, false
	tr, hit, err := s.cache.GetOrCapture(ctx, key, func(interrupt func() error) (*trace.Trace, error) {
		if stored, ok := s.persist.load(key); ok {
			fromStore = true
			return stored, nil
		}
		if fetched, _, ok := s.peers.fetch(ctx, key); ok {
			fromPeer = true
			s.persist.save(key, fetched)
			return fetched, nil
		}
		opts.Interrupt = interrupt
		s.liveCaptures.Add(1)
		captured, err := driver.CaptureTrace(s.cfg.Arch, entry.Factory, opts)
		if err == nil {
			s.persist.save(key, captured)
		}
		return captured, err
	})
	switch {
	case err != nil:
		return nil, "", err
	case hit:
		return tr, srcHit, nil
	case fromStore:
		return tr, srcStore, nil
	case fromPeer:
		return tr, srcPeer, nil
	default:
		return tr, srcCapture, nil
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.inflightSearch.Add(1)
	defer s.inflightSearch.Add(-1)
	var q Query
	if err := decodeBody(w, r, &q); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	entry, mf, err := resolve(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if mf().Temporal() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("model %s time-shares the whole machine and has no cluster binding to search", mf().Name()))
		return
	}
	ctx, cancel := s.requestContext(r, q.TimeoutMs)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	s.respond(ctx, w, func() outcome {
		tr, src, err := s.getTrace(ctx, entry, q.key(entry), q.Options())
		if err != nil {
			return outcome{err: err}
		}
		opts := q.Options()
		opts.Interrupt = ctxInterrupt(ctx)
		sr, err := driver.SearchTrace(s.cfg.Arch, mf(), tr, opts)
		if err != nil {
			return outcome{err: err}
		}
		pinned := opts
		pinned.FixedSecureCores = sr.SecureCores
		pinned.WaiveReconfig = sr.WaiveReconfig
		res, err := driver.RunTrace(s.cfg.Arch, mf(), tr, pinned)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{src: src, body: SearchResponse{
			App:              res.App,
			Model:            res.Model,
			SecureCores:      sr.SecureCores,
			Probes:           sr.Probes,
			CompletionCycles: res.CompletionCycles,
			ComputeCycles:    res.ComputeCycles(),
			EntryExitCycles:  res.EntryExitCycles,
			PurgeCycles:      res.PurgeCycles,
			ReconfigCycles:   res.ReconfigCycles,
		}}
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.inflightRun.Add(1)
	defer s.inflightRun.Add(-1)
	var q Query
	if err := decodeBody(w, r, &q); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	entry, mf, err := resolve(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, q.TimeoutMs)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	s.respond(ctx, w, func() outcome {
		tr, src, err := s.getTrace(ctx, entry, q.key(entry), q.Options())
		if err != nil {
			return outcome{err: err}
		}
		opts := q.Options()
		opts.Interrupt = ctxInterrupt(ctx)
		res, err := driver.RunTrace(s.cfg.Arch, mf(), tr, opts)
		// The body is exactly the driver Result, so an online answer can be
		// diffed byte-for-byte against the batch path.
		return outcome{src: src, body: res, err: err}
	})
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	s.inflightGrid.Add(1)
	defer s.inflightGrid.Add(-1)
	var req GridRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty grid"))
		return
	}
	if len(req.Cells) > MaxGridCells {
		writeError(w, http.StatusBadRequest, fmt.Errorf("grid of %d cells exceeds the %d-cell limit", len(req.Cells), MaxGridCells))
		return
	}
	// Validate every cell before running any.
	entries := make([]apps.Entry, len(req.Cells))
	models := make([]func() enclave.Model, len(req.Cells))
	for i, q := range req.Cells {
		if q.TimeoutMs != 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("cell %d: timeout_ms is per request, not per cell — set it on the grid", i))
			return
		}
		entry, mf, err := resolve(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cell %d: %w", i, err))
			return
		}
		entries[i] = entry
		models[i] = mf
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.GridWorkers {
		workers = s.cfg.GridWorkers
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	s.respond(ctx, w, func() outcome {
		// Capture (or fetch) each distinct trace once, fanned out over the
		// worker pool, so the grid shares captures across its cells.
		type prefetched struct {
			tr  *trace.Trace
			err error
		}
		keyIndex := map[TraceKey]int{}
		var unique []int // cell index introducing each distinct key
		keyOf := func(i int) TraceKey {
			return req.Cells[i].key(entries[i])
		}
		for i := range req.Cells {
			if _, ok := keyIndex[keyOf(i)]; !ok {
				keyIndex[keyOf(i)] = len(unique)
				unique = append(unique, i)
			}
		}
		traces, _ := runner.Map(workers, unique, func(_ int, cell int) (prefetched, error) {
			tr, _, err := s.getTrace(ctx, entries[cell], keyOf(cell), req.Cells[cell].Options())
			return prefetched{tr: tr, err: err}, nil
		})

		var jobs []runner.Job
		var jobCell []int // jobs[j] runs response cell jobCell[j]
		resp := GridResponse{Cells: make([]GridCell, len(req.Cells)), Workers: workers}
		for i, q := range req.Cells {
			key := fmt.Sprintf("%s/%s", entries[i].Alias, models[i]().Name())
			resp.Cells[i].Key = key
			pf := traces[keyIndex[keyOf(i)]]
			if pf.err != nil {
				resp.Cells[i].Error = pf.err.Error()
				continue
			}
			opts := q.Options()
			if opts.Seed == 0 {
				// Seed by request cell, not job-list position: a failed
				// capture compacts the job list, and must not shift the
				// seeds (and results) of the surviving cells.
				opts.Seed = runner.SeedFor(1, i)
			}
			// An abandoned batch stops each in-flight replay at its next
			// round checkpoint, complementing the dispatch-level Ctx below.
			opts.Interrupt = ctxInterrupt(ctx)
			jobs = append(jobs, runner.Job{Key: key, App: entries[i].Factory, Model: models[i], Opts: opts, Trace: pf.tr})
			jobCell = append(jobCell, i)
		}
		// Ctx lets an abandoned batch stop dispatching replay jobs instead
		// of burning the pool on results nobody will read.
		rn := runner.Runner{Cfg: s.cfg.Arch, Workers: workers, Ctx: ctx}
		results, _ := rn.Run(jobs)
		for j, rr := range results {
			i := jobCell[j]
			if rr.Err != nil {
				resp.Cells[i].Error = rr.Err.Error()
				continue
			}
			resp.Cells[i].Result = rr.Res
		}
		return outcome{body: resp}
	})
}

// MaxScenarioEvents bounds one /v1/scenario timeline.
const MaxScenarioEvents = 64

// ScenarioRequest is /v1/scenario's body: a scenario.Spec plus the
// request deadline.
type ScenarioRequest struct {
	scenario.Spec
	// TimeoutMs caps this request (0 = the server default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Stream selects the streamed response: engine phase events framed as
	// NDJSON (or SSE under Accept: text/event-stream) chunks, terminated
	// by the full Report. See stream.go for the framing and failure
	// semantics.
	Stream bool `json:"stream,omitempty"`
}

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	s.inflightScenario.Add(1)
	defer s.inflightScenario.Add(-1)
	var req ScenarioRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	// Fail fast on client mistakes: the timeline length, plus everything
	// Spec.Validate can reject without simulating (model, application
	// pool, and explicit-timeline semantics).
	if n := len(req.Spec.Timeline); n > MaxScenarioEvents || (n == 0 && req.Spec.Events > MaxScenarioEvents) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("timeline exceeds the %d-event limit", MaxScenarioEvents))
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	if req.Stream {
		s.streamScenario(ctx, w, r, req)
		return
	}
	s.respond(ctx, w, func() outcome {
		// Both response shapes share the engine options (trace resolution
		// through the LRU cache, worst-source tracking); see
		// Server.scenarioOptions. The blocking path reports the source as
		// the X-Ironhide-Cache header.
		opts, worst := s.scenarioOptions(ctx)
		rep, err := scenario.Run(s.cfg.Arch, req.Spec, opts)
		return outcome{src: worst(), body: rep, err: err}
	})
}

// MaxJointTenants bounds one /v1/joint co-tenancy request.
const MaxJointTenants = 8

// JointRequest is /v1/joint's body: the tenant applications that want the
// machine simultaneously, and the joint-search knobs.
type JointRequest struct {
	// Apps lists the tenants (catalog aliases), at least two.
	Apps []string `json:"apps"`
	// Scale multiplies round counts for captures and co-runs.
	Scale float64 `json:"scale,omitempty"`
	// SecureCores is the secure-cluster size to partition (0 = half).
	SecureCores int `json:"secure_cores,omitempty"`
	// Policy compares only the named packing policy ("" = every policy).
	Policy string `json:"policy,omitempty"`
	// Seed anchors the deterministic run seeds (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMs caps this request (0 = the server default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// handleJoint answers POST /v1/joint: the joint scheduler partitions the
// machine between the requested tenants under each packing policy, scores
// every partition by co-running the tenants' traces (cached through the
// same trace levels as every other endpoint), and returns the ranked
// sched.Report.
func (s *Server) handleJoint(w http.ResponseWriter, r *http.Request) {
	s.inflightJoint.Add(1)
	defer s.inflightJoint.Add(-1)
	var req JointRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if len(req.Apps) < 2 || len(req.Apps) > MaxJointTenants {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("joint search needs 2..%d tenants, got %d", MaxJointTenants, len(req.Apps)))
		return
	}
	entries := make([]apps.Entry, len(req.Apps))
	for i, alias := range req.Apps {
		entry, err := apps.Find(alias)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		entries[i] = entry
	}
	policies, err := sched.PolicyByName(req.Policy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	s.respond(ctx, w, func() outcome {
		scale := req.Scale
		if scale <= 0 {
			scale = 1
		}
		worst := srcHit
		rank := map[string]int{srcHit: 0, srcStore: 1, srcPeer: 2, srcCapture: 3}
		tenants := make([]sched.Tenant, len(entries))
		for i, entry := range entries {
			key := TraceKey{App: entry.Name, Scale: scale}
			tr, src, err := s.getTrace(ctx, entry, key, driver.Options{Scale: scale})
			if err != nil {
				return outcome{err: err}
			}
			if rank[src] > rank[worst] {
				worst = src
			}
			tenants[i] = sched.Tenant{Name: entries[i].Alias, Trace: tr}
		}
		rep, err := sched.JointSearch(s.cfg.Arch, tenants, sched.Options{
			Scale:       scale,
			SecureCores: req.SecureCores,
			Workers:     s.cfg.GridWorkers,
			Seed:        req.Seed,
			Policies:    policies,
			Interrupt:   ctxInterrupt(ctx),
		})
		return outcome{src: worst, body: rep, err: err}
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Ready:         s.ready.Load(),
		Served:        s.served.Load(),
		LiveCaptures:  s.liveCaptures.Load(),
		InFlight: InFlightStats{
			Search:   s.inflightSearch.Load(),
			Run:      s.inflightRun.Load(),
			Grid:     s.inflightGrid.Load(),
			Scenario: s.inflightScenario.Load(),
			Joint:    s.inflightJoint.Load(),
		},
		Admission: s.gate.stats(),
		Cache:     s.cache.Stats(),
		Store:     s.persist.status(),
		Fleet:     s.peers.status(s.storeKeys()),
	})
}

// storeKeys lists the committed persistent-store keys ("" store → none).
func (s *Server) storeKeys() []string {
	if s.persist == nil {
		return nil
	}
	return s.persist.st.Keys()
}

// handleTrace serves this shard's copy of a trace to fleet peers, framed
// exactly as the persistent store frames entries on disk (IHS1 magic,
// framed key, CRC-32C over the whole frame) — the fetching side re-runs
// the same integrity checks on receipt, so a bit flip anywhere between
// this shard's memory and the peer's socket is caught, never replayed.
// The endpoint is read-only and never triggers work: a shard that doesn't
// already hold the trace answers 404 and the asking peer falls back to
// its own capture.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ks := r.PathValue("key")
	key, err := ParseTraceKey(ks)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeFrame := func(src string, frame []byte) {
		if s.peers != nil {
			s.peers.traceServed.Add(1)
		}
		cacheHeader(w, src)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(frame)
	}
	if tr, ok := s.cache.Peek(key); ok {
		writeFrame(srcHit, store.EncodeEntry(ks, trace.Marshal(tr)))
		return
	}
	if payload, ok := s.persist.raw(key); ok {
		writeFrame(srcStore, store.EncodeEntry(ks, payload))
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("trace %q not on this shard", ks))
}

// RingResponse is /v1/ring's body: this shard's view of the consistent-
// hash ring, plus — when ?key= is supplied — the replica set it computes
// for that key. Every fleet member must answer identically for the same
// key; the fleet selftest asserts exactly that against the client ring.
type RingResponse struct {
	Self     string   `json:"self"`
	Members  []string `json:"members"`
	Seed     int64    `json:"seed"`
	VNodes   int      `json:"vnodes"`
	Replicas int      `json:"replicas"`
	Key      string   `json:"key,omitempty"`
	Owners   []string `json:"owners,omitempty"`
}

func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if s.peers == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("not a fleet member"))
		return
	}
	resp := RingResponse{
		Self:     s.peers.self,
		Members:  s.peers.ring.Members(),
		Seed:     s.peers.ring.Seed(),
		VNodes:   s.peers.ring.VNodes(),
		Replicas: s.peers.replicas,
	}
	if key := r.URL.Query().Get("key"); key != "" {
		resp.Key = key
		resp.Owners = s.peers.ring.Owners(key, s.peers.replicas)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is process liveness: 200 whenever the server can answer
// at all, draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// ReadyzFleet reports shard identity, ring membership and prewarm
// progress inside a fleet member's /v1/readyz body, so a router or
// operator polling readiness also learns the shard's view of the ring.
type ReadyzFleet struct {
	Self     string   `json:"self"`
	Members  []string `json:"members"`
	Seed     int64    `json:"seed"`
	VNodes   int      `json:"vnodes"`
	Replicas int      `json:"replicas"`
	// Prewarmed counts traces loaded into the LRU from the store at boot.
	Prewarmed int `json:"prewarmed"`
	// StoreEntries counts committed traces on this shard's disk.
	StoreEntries int `json:"store_entries"`
}

// handleReadyz is load-balancer readiness: 200 while accepting new work,
// 503 once draining so traffic shifts away before the listener closes.
// Fleet members additionally report ring membership and prewarm progress.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ready"}
	if s.peers != nil {
		fl := ReadyzFleet{
			Self:     s.peers.self,
			Members:  s.peers.ring.Members(),
			Seed:     s.peers.ring.Seed(),
			VNodes:   s.peers.ring.VNodes(),
			Replicas: s.peers.replicas,
		}
		if s.persist != nil {
			fl.Prewarmed = s.persist.prewarmed
			fl.StoreEntries = s.persist.st.Len()
		}
		body["fleet"] = fl
	}
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, body)
		return
	}
	body["status"] = "draining"
	w.Header().Set("Retry-After", s.retryAfterValue())
	writeJSON(w, http.StatusServiceUnavailable, body)
}
