// Package abc implements the paper's secure mission-planning process: a
// self-adaptive Artificial Bee Colony (ABC) global optimizer (Xue et al.)
// searching for a low-cost waypoint path through an obstacle field derived
// from the perception input — the advanced driver-assistance scenario of
// the real-time perception and mission planning application.
package abc

import (
	"math"
	"math/rand"

	"ironhide/internal/arch"
	"ironhide/internal/sim"
	"ironhide/internal/vision"
)

// Objective is the function the colony minimizes over R^dim.
type Objective func(x []float64) float64

// Sphere is the classic convex test objective (minimum 0 at the origin);
// the tests verify convergence on it.
func Sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// PathCost builds a path-planning objective from an obstacle field: the
// decision vector encodes waypoint lateral offsets, and the cost is path
// length plus obstacle proximity penalties sampled from the field.
func PathCost(field []float64, width int) Objective {
	height := len(field) / width
	return func(x []float64) float64 {
		cost := 0.0
		prev := 0.0
		for i, off := range x {
			// Lateral positions are clamped to the field.
			lane := off
			if lane < 0 {
				lane = 0
			}
			if lane > float64(width-1) {
				lane = float64(width - 1)
			}
			y := (i + 1) * height / (len(x) + 1)
			if y >= height {
				y = height - 1
			}
			cost += math.Abs(lane-prev) + 1      // path length
			cost += 8 * field[y*width+int(lane)] // obstacle penalty
			prev = lane
		}
		return cost
	}
}

// Colony is the ABC secure process.
type Colony struct {
	dim, foods int
	limit      int
	gens       int // generations per interaction round
	rng        *rand.Rand
	objective  Objective

	foodsX  [][]float64
	fitness []float64
	trials  []int
	bestX   []float64
	bestF   float64

	foodBuf  sim.Buffer
	fieldBuf sim.Buffer
	src      *vision.Pipeline
	field    []float64
	fieldW   int
}

// NewColony builds an ABC process with the given population searching dim
// dimensions, running gens generations per interaction round (the colony
// iterates until its per-frame budget); if src is non-nil the objective is
// rebuilt each round from the latest VISION frame, otherwise obj is used
// directly.
func NewColony(dim, foods, limit, gens int, seed int64, src *vision.Pipeline, obj Objective) *Colony {
	if gens < 1 {
		gens = 1
	}
	return &Colony{
		dim: dim, foods: foods, limit: limit, gens: gens,
		rng:       rand.New(rand.NewSource(seed)),
		objective: obj, src: src,
	}
}

// Name implements workload.Process.
func (*Colony) Name() string { return "ABC" }

// Domain implements workload.Process.
func (*Colony) Domain() arch.Domain { return arch.Secure }

// Threads implements workload.Process.
func (*Colony) Threads() int { return 32 }

// Init implements workload.Process.
func (c *Colony) Init(m *sim.Machine, space *sim.AddressSpace) {
	c.foodsX = make([][]float64, c.foods)
	c.fitness = make([]float64, c.foods)
	c.trials = make([]int, c.foods)
	for i := range c.foodsX {
		c.foodsX[i] = make([]float64, c.dim)
		for d := range c.foodsX[i] {
			c.foodsX[i][d] = c.rng.Float64()*20 - 10
		}
	}
	c.bestX = make([]float64, c.dim)
	c.bestF = math.Inf(1)
	c.foodBuf = space.Alloc("food-sources", 8*c.foods*c.dim)
	c.fieldBuf = space.Alloc("obstacle-field", 8*64*64)
	c.field = make([]float64, 64*64)
	c.fieldW = 64
	if c.objective == nil {
		c.objective = Sphere
	}
	c.evaluateAll(nil)
}

func (c *Colony) evaluateAll(g *sim.Group) {
	eval := func(ctx *sim.Ctx, i int) {
		f := c.objective(c.foodsX[i])
		c.fitness[i] = f
		if f < c.bestF {
			c.bestF = f
			copy(c.bestX, c.foodsX[i])
		}
		if ctx != nil {
			for d := 0; d < c.dim; d += 8 {
				ctx.Read(c.foodBuf.Index(i*c.dim+d, 8))
			}
			ctx.Compute(int64(12 * c.dim))
		}
	}
	if g == nil {
		for i := range c.foodsX {
			eval(nil, i)
		}
		return
	}
	g.ParFor(c.foods, 2, eval)
}

// Round implements workload.Process: refresh the obstacle field from the
// latest frame, then run one employed/onlooker/scout generation.
func (c *Colony) Round(g *sim.Group, round int) {
	if c.src != nil {
		if frame := c.src.Output(); frame != nil {
			// Downsample the frame into the obstacle field.
			for y := 0; y < 64 && y < frame.H; y++ {
				for x := 0; x < 64 && x < frame.W; x++ {
					c.field[y*64+x] = float64(frame.Pix[y*frame.W+x])
				}
			}
			c.objective = PathCost(c.field, c.fieldW)
			g.ParFor(64, 8, func(ctx *sim.Ctx, y int) {
				for x := 0; x < 64; x += 8 {
					ctx.Write(c.fieldBuf.Index(y*64+x, 8))
				}
				ctx.Compute(32)
			})
		}
	}
	for gen := 0; gen < c.gens; gen++ {
		c.employedPhase(g, round*c.gens+gen)
		c.onlookerPhase(g, round*c.gens+gen)
		c.scoutPhase(g)
	}
}

// employedPhase: each employed bee perturbs its source toward a random
// partner and keeps the improvement (greedy selection).
func (c *Colony) employedPhase(g *sim.Group, round int) {
	partners := make([]int, c.foods)
	phis := make([]float64, c.foods)
	dims := make([]int, c.foods)
	for i := range partners {
		partners[i] = c.rng.Intn(c.foods)
		phis[i] = c.rng.Float64()*2 - 1
		dims[i] = c.rng.Intn(c.dim)
	}
	g.ParFor(c.foods, 2, func(ctx *sim.Ctx, i int) {
		d := dims[i]
		cand := append([]float64(nil), c.foodsX[i]...)
		cand[d] += phis[i] * (c.foodsX[i][d] - c.foodsX[partners[i]][d])
		f := c.objective(cand)
		for dd := 0; dd < c.dim; dd += 8 {
			ctx.Read(c.foodBuf.Index(i*c.dim+dd, 8))
		}
		ctx.Compute(int64(12 * c.dim))
		if f < c.fitness[i] {
			c.foodsX[i] = cand
			c.fitness[i] = f
			c.trials[i] = 0
			ctx.Write(c.foodBuf.Index(i*c.dim+d, 8))
			if f < c.bestF {
				c.bestF = f
				copy(c.bestX, cand)
			}
		} else {
			c.trials[i]++
		}
	})
}

// onlookerPhase: onlookers sample sources in proportion to quality and
// exploit the best ones again.
func (c *Colony) onlookerPhase(g *sim.Group, round int) {
	// Roulette selection (deterministic RNG on thread 0's schedule).
	chosen := make([]int, c.foods/2)
	var worst float64
	for _, f := range c.fitness {
		if f > worst {
			worst = f
		}
	}
	for i := range chosen {
		// Higher quality = lower fitness; invert for weights.
		r := c.rng.Float64() * float64(c.foods)
		chosen[i] = int(r) % c.foods
		if c.fitness[chosen[i]] > worst/2 {
			chosen[i] = c.rng.Intn(c.foods)
		}
	}
	g.ParFor(len(chosen), 2, func(ctx *sim.Ctx, k int) {
		i := chosen[k]
		d := (k + i) % c.dim
		phi := float64((k*2654435761)%2001-1000) / 1000
		partner := (i + 1 + k) % c.foods
		cand := append([]float64(nil), c.foodsX[i]...)
		cand[d] += phi * (c.foodsX[i][d] - c.foodsX[partner][d])
		f := c.objective(cand)
		for dd := 0; dd < c.dim; dd += 8 {
			ctx.Read(c.foodBuf.Index(i*c.dim+dd, 8))
		}
		ctx.Compute(int64(12 * c.dim))
		if f < c.fitness[i] {
			c.foodsX[i] = cand
			c.fitness[i] = f
			c.trials[i] = 0
			ctx.Write(c.foodBuf.Index(i*c.dim+d, 8))
			if f < c.bestF {
				c.bestF = f
				copy(c.bestX, cand)
			}
		} else {
			c.trials[i]++
		}
	})
}

// scoutPhase: exhausted sources are abandoned and re-seeded randomly.
func (c *Colony) scoutPhase(g *sim.Group) {
	g.Seq(func(ctx *sim.Ctx) {
		for i := range c.trials {
			if c.trials[i] <= c.limit {
				continue
			}
			for d := range c.foodsX[i] {
				c.foodsX[i][d] = c.rng.Float64()*20 - 10
			}
			c.fitness[i] = c.objective(c.foodsX[i])
			c.trials[i] = 0
			ctx.Write(c.foodBuf.Index(i*c.dim, 8))
			ctx.Compute(int64(12 * c.dim))
		}
	})
}

// Best returns the best objective value found so far.
func (c *Colony) Best() float64 { return c.bestF }

// BestVector returns a copy of the best decision vector.
func (c *Colony) BestVector() []float64 { return append([]float64(nil), c.bestX...) }
