package abc

import (
	"testing"

	"ironhide/internal/arch"
	"ironhide/internal/sim"
	"ironhide/internal/vision"
)

func machine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.NewMachine(arch.TileGx72())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func gang(m *sim.Machine, n int) *sim.Group {
	ids := make([]arch.CoreID, n)
	for i := range ids {
		ids[i] = arch.CoreID(i)
	}
	return m.NewGroup(arch.Secure, ids, 0)
}

func TestConvergesOnSphere(t *testing.T) {
	m := machine(t)
	c := NewColony(6, 24, 30, 1, 7, nil, Sphere)
	c.Init(m, m.NewSpace("ABC", arch.Secure))
	start := c.Best()
	g := gang(m, 8)
	for r := 0; r < 150; r++ {
		c.Round(g, r)
	}
	if c.Best() >= start {
		t.Fatalf("no improvement: %f -> %f", start, c.Best())
	}
	if c.Best() > start/10 {
		t.Fatalf("weak convergence: %f -> %f", start, c.Best())
	}
}

func TestBestMonotone(t *testing.T) {
	m := machine(t)
	c := NewColony(4, 16, 20, 1, 3, nil, Sphere)
	c.Init(m, m.NewSpace("ABC", arch.Secure))
	g := gang(m, 4)
	prev := c.Best()
	for r := 0; r < 40; r++ {
		c.Round(g, r)
		if c.Best() > prev+1e-12 {
			t.Fatalf("best worsened at round %d: %f -> %f", r, prev, c.Best())
		}
		prev = c.Best()
	}
}

func TestPathCostPrefersFreeLanes(t *testing.T) {
	width := 8
	field := make([]float64, width*8)
	// Obstacles fill lanes 4..7; lanes 0..3 are free.
	for y := 0; y < 8; y++ {
		for x := 4; x < width; x++ {
			field[y*width+x] = 1
		}
	}
	obj := PathCost(field, width)
	free := obj([]float64{1, 1, 1})
	blocked := obj([]float64{6, 6, 6})
	if free >= blocked {
		t.Fatalf("free path cost %f >= blocked %f", free, blocked)
	}
}

func TestVisionCoupledObjective(t *testing.T) {
	m := machine(t)
	p := vision.NewPipeline(64, 64, 9)
	p.Init(m, m.NewSpace("VISION", arch.Insecure))
	ig := m.NewGroup(arch.Insecure, []arch.CoreID{60, 61}, 0)
	p.Round(ig, 0)

	c := NewColony(5, 16, 20, 2, 5, p, nil)
	c.Init(m, m.NewSpace("ABC", arch.Secure))
	g := gang(m, 4)
	for r := 0; r < 20; r++ {
		p.Round(ig, r)
		c.Round(g, r)
	}
	if len(c.BestVector()) != 5 {
		t.Fatal("best vector shape wrong")
	}
	if g.MaxCycles() == 0 {
		t.Fatal("planning charged nothing")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		m := machine(t)
		c := NewColony(4, 12, 15, 1, 21, nil, Sphere)
		c.Init(m, m.NewSpace("ABC", arch.Secure))
		g := gang(m, 4)
		for r := 0; r < 30; r++ {
			c.Round(g, r)
		}
		return c.Best()
	}
	if run() != run() {
		t.Fatal("nondeterministic colony")
	}
}

func TestMetadata(t *testing.T) {
	c := NewColony(2, 4, 5, 1, 1, nil, Sphere)
	if c.Name() != "ABC" || c.Domain() != arch.Secure || c.Threads() <= 0 {
		t.Fatal("metadata wrong")
	}
}
