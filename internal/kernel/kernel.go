// Package kernel implements the trusted light-weight secure kernel that
// IRONHIDE (like MI6's security monitor) runs alongside secure processes
// in the secure cluster. It attests and authenticates secure processes via
// measurement and signature checking, admits only attested processes to
// the secure cluster, and enforces the security-centric bound on dynamic
// hardware isolation: at most one cluster reconfiguration per interactive
// application invocation, which caps the information leakable through
// scheduling timing/termination channels at a small constant.
package kernel

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Measurement is the SHA-256 digest of a secure process's identity and
// launch configuration — the analogue of an enclave measurement.
type Measurement [sha256.Size]byte

// Measure computes the measurement of a process image.
func Measure(name string, image []byte) Measurement {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(image)
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// Certificate binds a measurement to a signing authority.
type Certificate struct {
	Measurement Measurement
	Signature   []byte
}

// Sign issues a certificate over a measurement.
func Sign(priv ed25519.PrivateKey, m Measurement) Certificate {
	return Certificate{Measurement: m, Signature: ed25519.Sign(priv, m[:])}
}

// ErrNotAttested is returned when a process fails attestation.
var ErrNotAttested = errors.New("kernel: process failed attestation")

// ErrReconfigBudget is returned when a second reconfiguration is requested
// within one application invocation.
var ErrReconfigBudget = errors.New("kernel: cluster reconfiguration budget exhausted (limit: once per application invocation)")

// Kernel is the secure kernel state.
type Kernel struct {
	trusted       []ed25519.PublicKey
	admitted      map[Measurement]string
	reconfigLimit int
	reconfigsUsed int
}

// New builds a secure kernel trusting the given signing authorities, with
// the paper's reconfiguration budget of one event per invocation.
func New(trusted ...ed25519.PublicKey) *Kernel {
	return &Kernel{
		trusted:       trusted,
		admitted:      make(map[Measurement]string),
		reconfigLimit: 1,
	}
}

// SetReconfigLimit overrides the reconfiguration budget; the ablation
// experiments use it to quantify what the paper's bound costs.
func (k *Kernel) SetReconfigLimit(n int) { k.reconfigLimit = n }

// Attest verifies that the process image matches the certificate's
// measurement and that a trusted authority signed it; on success the
// process is admitted to the secure cluster.
func (k *Kernel) Attest(name string, image []byte, cert Certificate) error {
	if Measure(name, image) != cert.Measurement {
		return fmt.Errorf("%w: measurement mismatch for %q", ErrNotAttested, name)
	}
	for _, pub := range k.trusted {
		if ed25519.Verify(pub, cert.Measurement[:], cert.Signature) {
			k.admitted[cert.Measurement] = name
			return nil
		}
	}
	return fmt.Errorf("%w: no trusted authority signed %q", ErrNotAttested, name)
}

// Admitted reports whether a process measurement has been attested.
func (k *Kernel) Admitted(m Measurement) bool {
	_, ok := k.admitted[m]
	return ok
}

// AdmittedCount returns the number of admitted secure processes.
func (k *Kernel) AdmittedCount() int { return len(k.admitted) }

// AuthorizeReconfig consumes one unit of the reconfiguration budget,
// failing once the per-invocation bound is reached.
func (k *Kernel) AuthorizeReconfig() error {
	if k.reconfigsUsed >= k.reconfigLimit {
		return ErrReconfigBudget
	}
	k.reconfigsUsed++
	return nil
}

// ReconfigsUsed reports consumed budget.
func (k *Kernel) ReconfigsUsed() int { return k.reconfigsUsed }

// NewInvocation resets the reconfiguration budget for a new interactive
// application invocation.
func (k *Kernel) NewInvocation() { k.reconfigsUsed = 0 }
