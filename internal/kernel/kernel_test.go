package kernel

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func keys(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestMeasureDeterministicAndDistinct(t *testing.T) {
	a := Measure("sssp", []byte("image-a"))
	if a != Measure("sssp", []byte("image-a")) {
		t.Fatal("measurement not deterministic")
	}
	if a == Measure("sssp", []byte("image-b")) {
		t.Fatal("different images measured equal")
	}
	if a == Measure("pr", []byte("image-a")) {
		t.Fatal("different names measured equal")
	}
	// Name/image boundary must matter: ("ab","c") != ("a","bc").
	if Measure("ab", []byte("c")) == Measure("a", []byte("bc")) {
		t.Fatal("measurement ignores the name/image boundary")
	}
}

func TestAttestHappyPath(t *testing.T) {
	pub, priv := keys(t)
	k := New(pub)
	m := Measure("aes", []byte("enclave image"))
	cert := Sign(priv, m)
	if err := k.Attest("aes", []byte("enclave image"), cert); err != nil {
		t.Fatal(err)
	}
	if !k.Admitted(m) || k.AdmittedCount() != 1 {
		t.Fatal("attested process not admitted")
	}
}

func TestAttestRejectsTamperedImage(t *testing.T) {
	pub, priv := keys(t)
	k := New(pub)
	cert := Sign(priv, Measure("aes", []byte("good image")))
	err := k.Attest("aes", []byte("evil image"), cert)
	if !errors.Is(err, ErrNotAttested) {
		t.Fatalf("tampered image attested: %v", err)
	}
	if k.AdmittedCount() != 0 {
		t.Fatal("tampered process admitted")
	}
}

func TestAttestRejectsUntrustedSigner(t *testing.T) {
	pub, _ := keys(t)
	_, evilPriv := keys(t)
	k := New(pub)
	m := Measure("aes", []byte("image"))
	cert := Sign(evilPriv, m)
	if err := k.Attest("aes", []byte("image"), cert); !errors.Is(err, ErrNotAttested) {
		t.Fatalf("untrusted signature attested: %v", err)
	}
}

func TestAttestRejectsForgedSignature(t *testing.T) {
	pub, priv := keys(t)
	k := New(pub)
	m := Measure("aes", []byte("image"))
	cert := Sign(priv, m)
	cert.Signature[0] ^= 0xFF
	if err := k.Attest("aes", []byte("image"), cert); !errors.Is(err, ErrNotAttested) {
		t.Fatalf("forged signature attested: %v", err)
	}
}

func TestMultipleTrustedAuthorities(t *testing.T) {
	pubA, _ := keys(t)
	pubB, privB := keys(t)
	k := New(pubA, pubB)
	m := Measure("pr", []byte("image"))
	if err := k.Attest("pr", []byte("image"), Sign(privB, m)); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigBudget(t *testing.T) {
	k := New()
	if err := k.AuthorizeReconfig(); err != nil {
		t.Fatalf("first reconfiguration refused: %v", err)
	}
	if err := k.AuthorizeReconfig(); !errors.Is(err, ErrReconfigBudget) {
		t.Fatalf("second reconfiguration allowed: %v", err)
	}
	if k.ReconfigsUsed() != 1 {
		t.Fatalf("used = %d", k.ReconfigsUsed())
	}
	k.NewInvocation()
	if err := k.AuthorizeReconfig(); err != nil {
		t.Fatalf("budget not reset on new invocation: %v", err)
	}
}

func TestReconfigLimitOverride(t *testing.T) {
	k := New()
	k.SetReconfigLimit(3)
	for i := 0; i < 3; i++ {
		if err := k.AuthorizeReconfig(); err != nil {
			t.Fatalf("authorization %d refused: %v", i, err)
		}
	}
	if err := k.AuthorizeReconfig(); err == nil {
		t.Fatal("limit override not enforced")
	}
}

// Property: attestation accepts exactly the (name, image) pair that was
// measured and signed, never any other pair.
func TestAttestationSoundness(t *testing.T) {
	pub, priv := keys(t)
	f := func(name string, image, otherImage []byte) bool {
		k := New(pub)
		cert := Sign(priv, Measure(name, image))
		if k.Attest(name, image, cert) != nil {
			return false
		}
		if string(image) != string(otherImage) {
			if k.Attest(name, otherImage, cert) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
