package kvstore

import (
	"testing"
	"testing/quick"

	"ironhide/internal/arch"
	"ironhide/internal/osproc"
	"ironhide/internal/sim"
)

func TestStoreSetGetDelete(t *testing.T) {
	s := NewStore(1 << 20)
	if _, ok := s.Get(1); ok {
		t.Fatal("empty store returned a value")
	}
	s.Set(1, []byte("hello"))
	v, ok := s.Get(1)
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s.Set(1, []byte("world!"))
	if v, _ := s.Get(1); string(v) != "world!" {
		t.Fatal("overwrite lost")
	}
	if !s.Delete(1) || s.Delete(1) {
		t.Fatal("delete semantics wrong")
	}
	if s.Len() != 0 || s.Used() != 0 {
		t.Fatalf("store not empty after delete: len=%d used=%d", s.Len(), s.Used())
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(300)
	s.Set(1, make([]byte, 100))
	s.Set(2, make([]byte, 100))
	s.Set(3, make([]byte, 100))
	s.Get(1) // refresh 1; 2 becomes LRU
	s.Set(4, make([]byte, 100))
	if _, ok := s.Get(2); ok {
		t.Fatal("LRU key 2 survived")
	}
	if _, ok := s.Get(1); !ok {
		t.Fatal("recently used key 1 evicted")
	}
	if _, _, ev := s.Stats(); ev == 0 {
		t.Fatal("eviction not counted")
	}
}

// Property: the capacity bound always holds.
func TestStoreCapacityInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewStore(1000)
		for _, op := range ops {
			key := uint32(op % 64)
			size := int(op%300) + 1
			s.Set(key, make([]byte, size))
		}
		return s.Used() <= 1000 || s.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemtierSourceMixAndSkew(t *testing.T) {
	src := NewMemtierSource(16384, 256, 0.1, 5)
	counts := map[uint32]int{}
	var sets int
	const total = 4000
	reqs := src.Generate(0, total)
	for _, r := range reqs {
		counts[r.Key]++
		if r.Kind == OpSet {
			sets++
		}
	}
	if sets < total/40 || sets > total/4 {
		t.Fatalf("sets = %d of %d; want ~10%%", sets, total)
	}
	var hot int
	for _, n := range counts {
		if n > hot {
			hot = n
		}
	}
	if hot < total/100 {
		t.Fatalf("hottest key only %d hits; Zipf skew missing", hot)
	}
}

func TestServerRoundServesAndCallsOS(t *testing.T) {
	m, err := sim.NewMachine(arch.TileGx72())
	if err != nil {
		t.Fatal(err)
	}
	ch := &osproc.Channel{}
	src := NewMemtierSource(4096, 128, 0.2, 7)
	osp := osproc.New(ch, src, 32)
	srv := NewServer(ch, 1<<20)
	osp.Init(m, m.NewSpace("OS", arch.Insecure))
	srv.Init(m, m.NewSpace("MEMCACHED", arch.Secure))

	ig := m.NewGroup(arch.Insecure, []arch.CoreID{56, 57}, 0)
	sg := m.NewGroup(arch.Secure, []arch.CoreID{0, 1, 2, 3}, 0)
	for r := 0; r < 5; r++ {
		osp.Round(ig, r)
		srv.Round(sg, r)
	}
	gets, sets := srv.Ops()
	if gets+sets != 5*32 {
		t.Fatalf("served %d ops, want %d", gets+sets, 5*32)
	}
	if sets == 0 || gets == 0 {
		t.Fatal("op mix degenerate")
	}
	// The server issued writev responses; the OS served them next round.
	if osp.Served() == 0 {
		t.Fatal("OS serviced no syscalls")
	}
	if len(ch.Syscalls) == 0 {
		t.Fatal("no pending syscalls after final server round")
	}
	// Real data: a set key must be retrievable.
	hits, misses, _ := srv.Store().Stats()
	if hits+misses == 0 {
		t.Fatal("store never probed")
	}
}

func TestServerMetadata(t *testing.T) {
	srv := NewServer(&osproc.Channel{}, 1024)
	if srv.Name() != "MEMCACHED" || srv.Domain() != arch.Secure || srv.Threads() <= 0 {
		t.Fatal("metadata wrong")
	}
}
