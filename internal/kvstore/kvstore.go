// Package kvstore implements the paper's MEMCACHED application: a
// memcached-like in-memory key-value store (hash buckets over slab-style
// value storage with LRU eviction) running as the secure server process,
// plus a memtier-like closed-loop client source generating the GET/SET mix
// over Zipf-popular keys that drives it.
package kvstore

import (
	"container/list"
	"math/rand"

	"ironhide/internal/arch"
	"ironhide/internal/osproc"
	"ironhide/internal/sim"
)

// Store is the memcached-like store: a bucketed hash index over byte
// values with a capacity bound enforced by LRU eviction.
type Store struct {
	capacity int // max total value bytes
	used     int
	items    map[uint32]*list.Element
	lru      *list.List // front = most recent

	hits, misses, evictions int64
}

type item struct {
	key   uint32
	value []byte
}

// NewStore builds a store bounded at capacity value bytes.
func NewStore(capacity int) *Store {
	return &Store{
		capacity: capacity,
		items:    make(map[uint32]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the value and whether it was present, refreshing recency.
func (s *Store) Get(key uint32) ([]byte, bool) {
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.hits++
	return el.Value.(*item).value, true
}

// Set stores value under key, evicting LRU entries to fit.
func (s *Store) Set(key uint32, value []byte) {
	if el, ok := s.items[key]; ok {
		it := el.Value.(*item)
		s.used += len(value) - len(it.value)
		it.value = value
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&item{key: key, value: value})
		s.used += len(value)
	}
	for s.used > s.capacity && s.lru.Len() > 0 {
		back := s.lru.Back()
		it := back.Value.(*item)
		s.used -= len(it.value)
		delete(s.items, it.key)
		s.lru.Remove(back)
		s.evictions++
	}
}

// Delete removes key if present.
func (s *Store) Delete(key uint32) bool {
	el, ok := s.items[key]
	if !ok {
		return false
	}
	s.used -= len(el.Value.(*item).value)
	delete(s.items, key)
	s.lru.Remove(el)
	return true
}

// Len returns the number of resident items.
func (s *Store) Len() int { return s.lru.Len() }

// Used returns resident value bytes.
func (s *Store) Used() int { return s.used }

// Stats returns (hits, misses, evictions).
func (s *Store) Stats() (int64, int64, int64) { return s.hits, s.misses, s.evictions }

// Request opcodes produced by the memtier source.
const (
	OpGet byte = iota
	OpSet
)

// MemtierSource is the memtier-like client load: a GET-heavy mix over
// Zipf-popular keys (the workload-analysis mix of Atikoglu et al.).
type MemtierSource struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	valueLen int
	setRatio float64
}

// NewMemtierSource builds the source over keySpace keys.
func NewMemtierSource(keySpace, valueLen int, setRatio float64, seed int64) *MemtierSource {
	rng := rand.New(rand.NewSource(seed))
	return &MemtierSource{
		rng:      rng,
		zipf:     rand.NewZipf(rng, 1.07, 16, uint64(keySpace-1)),
		valueLen: valueLen,
		setRatio: setRatio,
	}
}

// Generate implements osproc.Source.
func (ms *MemtierSource) Generate(round, n int) []osproc.Request {
	out := make([]osproc.Request, n)
	for i := range out {
		kind := OpGet
		if ms.rng.Float64() < ms.setRatio {
			kind = OpSet
		}
		out[i] = osproc.Request{Kind: kind, Key: uint32(ms.zipf.Uint64()), Size: ms.valueLen}
	}
	return out
}

// Server is the secure MEMCACHED process.
type Server struct {
	ch    *osproc.Channel
	store *Store

	indexBuf sim.Buffer
	slabBuf  sim.Buffer

	gets, sets int64
}

// NewServer builds the MEMCACHED server over channel ch with the given
// store capacity in bytes.
func NewServer(ch *osproc.Channel, capacity int) *Server {
	return &Server{ch: ch, store: NewStore(capacity)}
}

// Name implements workload.Process.
func (*Server) Name() string { return "MEMCACHED" }

// Domain implements workload.Process.
func (*Server) Domain() arch.Domain { return arch.Secure }

// Threads implements workload.Process.
func (*Server) Threads() int { return 24 }

// Init implements workload.Process.
func (s *Server) Init(m *sim.Machine, space *sim.AddressSpace) {
	s.indexBuf = space.Alloc("hash-index", 1<<20)
	s.slabBuf = space.Alloc("slabs", 4<<20)
}

// Round implements workload.Process: serve the delivered batch, issuing
// the per-request OS interactions the paper measures (a writev response
// per request, plus occasional fcntl/close connection churn).
func (s *Server) Round(g *sim.Group, round int) {
	reqs := s.ch.TakeInbox()
	g.ParFor(len(reqs), 2, func(c *sim.Ctx, i int) {
		r := reqs[i]
		// Hash-index probe.
		c.Read(s.indexBuf.Index(int(r.Key)%(s.indexBuf.Size/16), 16))
		switch r.Kind {
		case OpSet:
			v := make([]byte, r.Size)
			for j := range v {
				v[j] = byte(r.Key) + byte(j)
			}
			s.store.Set(r.Key, v)
			for off := 0; off < r.Size; off += 64 {
				c.Write(s.slabBuf.Addr((int(r.Key)*128 + off) % s.slabBuf.Size))
			}
			s.sets++
			c.Compute(int64(220 + r.Size/8))
		default:
			v, ok := s.store.Get(r.Key)
			n := r.Size
			if ok {
				n = len(v)
				for off := 0; off < n; off += 64 {
					c.Read(s.slabBuf.Addr((int(r.Key)*128 + off) % s.slabBuf.Size))
				}
			}
			s.gets++
			c.Compute(int64(160 + n/8))
		}
		// Every response goes back through the OS (writev); connection
		// churn adds fcntl/close.
		s.pushSyscall(osproc.Syscall{Kind: osproc.Writev, FD: int(r.Key) % 1024, Size: r.Size})
		if i%16 == 0 {
			s.pushSyscall(osproc.Syscall{Kind: osproc.Fcntl, FD: int(r.Key) % 1024})
		}
		if i%64 == 0 {
			s.pushSyscall(osproc.Syscall{Kind: osproc.Close, FD: int(r.Key) % 1024})
		}
	})
}

// pushSyscall serializes queue appends (ParFor bodies may interleave).
func (s *Server) pushSyscall(sc osproc.Syscall) { s.ch.PushSyscall(sc) }

// Store exposes the underlying store for tests.
func (s *Server) Store() *Store { return s.store }

// Ops returns (gets, sets) served.
func (s *Server) Ops() (int64, int64) { return s.gets, s.sets }
