// Package arch defines the architectural vocabulary shared by every
// subsystem of the IRONHIDE multicore model: core and cluster identifiers,
// physical addresses, security domains, and the machine configuration
// (mesh geometry, cache and TLB organizations, and latency parameters).
//
// The default configuration, TileGx72, reconstructs the Tilera
// Tile-Gx72(TM) platform used by the paper's prototype: 64 usable cores on
// a 2-D mesh, a private 32 KB L1 data cache and private TLB per core, a
// 256 KB shared L2 cache slice per core (distributed shared last-level
// cache), and four DDR memory controllers attached at the mesh edges.
// Table I of the paper (the system-configuration table) is not present in
// the source text available to this reproduction; the values below are
// rebuilt from in-text references and public Tile-Gx72 documentation.
package arch

import (
	"fmt"
	"time"
)

// CoreID identifies a core (tile) on the mesh, in row-major order:
// core c sits at coordinate (c mod W, c div W).
type CoreID int

// Addr is a physical byte address in the simulated machine.
type Addr uint64

// Domain is a security domain. The paper's model has exactly two:
// the insecure world and the secure world (the enclave side).
type Domain int

const (
	// Insecure is the domain of ordinary (untrusted) processes, including
	// the untrusted operating system.
	Insecure Domain = 0
	// Secure is the domain of attested secure processes (enclaves).
	Secure Domain = 1
)

// String returns the conventional name of the domain.
func (d Domain) String() string {
	switch d {
	case Insecure:
		return "insecure"
	case Secure:
		return "secure"
	default:
		return fmt.Sprintf("domain(%d)", int(d))
	}
}

// Coord is a router coordinate on the 2-D mesh. X grows rightwards along a
// row, Y grows downwards across rows.
type Coord struct {
	X, Y int
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Config describes the modeled multicore. All latencies are in core clock
// cycles; with the default 1 GHz clock one cycle is one nanosecond, which
// keeps cycle arithmetic and wall-clock arithmetic interchangeable.
type Config struct {
	// Mesh geometry.
	MeshWidth  int // routers per row
	MeshHeight int // rows
	ClockHz    int64

	// Private L1 data cache, per core.
	L1Size   int // bytes
	L1Ways   int
	L1HitLat int64 // cycles

	// Private TLB, per core.
	TLBEntries  int
	TLBWays     int
	PageSize    int
	PageWalkLat int64 // cycles to refill one TLB entry

	// Shared L2: one slice per core (distributed shared last-level cache).
	L2SliceSize int // bytes per slice
	L2Ways      int
	L2HitLat    int64 // cycles

	LineSize int // cache line, bytes

	// On-chip network.
	HopLat    int64 // per-hop router+link traversal, cycles
	RouterLat int64 // injection/ejection overhead per network crossing, cycles
	// LinkContentionLat is the added cycles per mesh link whose last user
	// was a different co-resident tenant — the switch-allocation penalty a
	// packet pays when it displaces another tenant's flow on a shared
	// link. Charged only when the machine tracks tenants (space-shared
	// co-tenancy); single-tenant runs never observe it.
	LinkContentionLat int64

	// Memory system.
	MemControllers int
	DRAMRegions    int   // physically isolated DRAM regions
	MCQueueDepth   int   // request-queue entries per controller
	MCServiceLat   int64 // controller occupancy per request, cycles
	DRAMLat        int64 // row access latency, cycles
	MCDrainLat     int64 // cycles to drain+write back one queue entry on purge

	// Core pipeline.
	PipelineFlushLat int64 // cycles to flush and refill the core pipeline

	// Security-protocol constants.
	SGXEntryExitLat  int64 // SGX-like ECALL/OCALL constant (HotCalls ~5us)
	OSSwitchLat      int64 // ordinary (insecure) process switch cost
	PurgeKernelLat   int64 // secure-kernel orchestration overhead per purge
	L1FlushLineLat   int64 // per-line cost of the dummy-buffer L1 flush read
	TLBFlushLat      int64 // flat cost of the TLB purge user command
	RehomePageLat    int64 // cycles to unmap+rehome+remap one L2-resident page
	BarrierBaseLat   int64 // base cost of one thread barrier
	AtomicContention int64 // added cycles per contending thread on an atomic

	// ProtocolDilation records the divisor applied to the protocol
	// constants above by TileGx72Scaled (1 = full fidelity). Reports
	// multiply per-event costs back by it when quoting wall-clock numbers.
	ProtocolDilation int64
}

// Cores returns the number of cores (tiles) on the mesh.
func (c Config) Cores() int { return c.MeshWidth * c.MeshHeight }

// CoordOf maps a core to its mesh coordinate (row-major layout).
func (c Config) CoordOf(id CoreID) Coord {
	return Coord{X: int(id) % c.MeshWidth, Y: int(id) / c.MeshWidth}
}

// CoreAt maps a mesh coordinate back to its core identifier.
func (c Config) CoreAt(at Coord) CoreID {
	return CoreID(at.Y*c.MeshWidth + at.X)
}

// L1Sets returns the number of sets in the private L1.
func (c Config) L1Sets() int { return c.L1Size / (c.L1Ways * c.LineSize) }

// L2Sets returns the number of sets in one shared L2 slice.
func (c Config) L2Sets() int { return c.L2SliceSize / (c.L2Ways * c.LineSize) }

// CyclesToDuration converts a cycle count to wall-clock time at the
// configured core frequency. The conversion is integer-exact so that
// round-tripping through DurationToCycles is lossless.
func (c Config) CyclesToDuration(cycles int64) time.Duration {
	secs := cycles / c.ClockHz
	rem := cycles % c.ClockHz
	return time.Duration(secs)*time.Second + time.Duration(rem*int64(time.Second)/c.ClockHz)
}

// DurationToCycles converts wall-clock time to cycles at the configured
// core frequency.
func (c Config) DurationToCycles(d time.Duration) int64 {
	secs := int64(d / time.Second)
	rem := int64(d % time.Second)
	return secs*c.ClockHz + rem*c.ClockHz/int64(time.Second)
}

// Validate reports a descriptive error if the configuration is not
// internally consistent (non-power-of-two caches, empty mesh, and so on).
func (c Config) Validate() error {
	switch {
	case c.MeshWidth <= 0 || c.MeshHeight <= 0:
		return fmt.Errorf("arch: mesh %dx%d must be positive", c.MeshWidth, c.MeshHeight)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("arch: line size %d must be a positive power of two", c.LineSize)
	case c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("arch: page size %d must be a positive power of two", c.PageSize)
	case c.L1Ways <= 0 || c.L1Size%(c.L1Ways*c.LineSize) != 0:
		return fmt.Errorf("arch: L1 %dB/%d-way not divisible into sets of %dB lines", c.L1Size, c.L1Ways, c.LineSize)
	case c.L2Ways <= 0 || c.L2SliceSize%(c.L2Ways*c.LineSize) != 0:
		return fmt.Errorf("arch: L2 slice %dB/%d-way not divisible into sets of %dB lines", c.L2SliceSize, c.L2Ways, c.LineSize)
	case c.TLBWays <= 0 || c.TLBEntries%c.TLBWays != 0:
		return fmt.Errorf("arch: TLB %d entries not divisible by %d ways", c.TLBEntries, c.TLBWays)
	case c.MemControllers <= 0:
		return fmt.Errorf("arch: need at least one memory controller, have %d", c.MemControllers)
	case c.DRAMRegions%c.MemControllers != 0:
		return fmt.Errorf("arch: %d DRAM regions not divisible across %d controllers", c.DRAMRegions, c.MemControllers)
	case c.ClockHz <= 0:
		return fmt.Errorf("arch: clock %d Hz must be positive", c.ClockHz)
	}
	return nil
}

// TileGx72 returns the reconstructed Tile-Gx72 configuration used
// throughout the paper's evaluation: 64 cores on an 8x8 mesh at 1 GHz,
// 32 KB 8-way L1d, 256 KB 8-way L2 slice per core, 64 B lines, 32-entry
// private TLB with 4 KB pages, and 4 memory controllers serving 8
// physically isolated DRAM regions.
func TileGx72() Config {
	return Config{
		MeshWidth:  8,
		MeshHeight: 8,
		ClockHz:    1_000_000_000,

		L1Size:   32 << 10,
		L1Ways:   8,
		L1HitLat: 2,

		TLBEntries:  32,
		TLBWays:     4,
		PageSize:    4 << 10,
		PageWalkLat: 50,

		L2SliceSize: 256 << 10,
		L2Ways:      8,
		L2HitLat:    11,

		LineSize: 64,

		HopLat:            2,
		RouterLat:         4,
		LinkContentionLat: 2,

		MemControllers: 4,
		DRAMRegions:    8,
		MCQueueDepth:   16,
		MCServiceLat:   12,
		DRAMLat:        105,
		MCDrainLat:     60,

		PipelineFlushLat: 200,

		SGXEntryExitLat:  5_000, // 5us at 1 GHz (HotCalls upper bound)
		OSSwitchLat:      2_000,
		PurgeKernelLat:   120_000, // fences + secure-kernel orchestration
		L1FlushLineLat:   110,     // dummy-buffer reads mostly miss to L2/DRAM
		TLBFlushLat:      2_000,
		RehomePageLat:    4_000,
		BarrierBaseLat:   600,
		AtomicContention: 1_300,

		ProtocolDilation: 1,
	}
}

// TileGx72Scaled returns the evaluation configuration: the full-fidelity
// machine with the per-event protocol constants divided by the dilation
// factor. The paper's applications run milliseconds of work between
// interactions (5.3 ms per user-level input against a 0.19 ms purge); a
// software simulator cannot afford millisecond rounds at 64-core scale,
// so the experiment harness shrinks the rounds and shrinks the protocol
// constants by the same factor, preserving the overhead-to-work ratios
// the paper's figures are built on. Reports multiply per-event costs back
// by ProtocolDilation when quoting wall-clock equivalents. The
// substitution is documented in DESIGN.md.
func TileGx72Scaled(dilation int64) Config {
	cfg := TileGx72()
	if dilation <= 1 {
		return cfg
	}
	cfg.SGXEntryExitLat /= dilation
	cfg.OSSwitchLat /= dilation
	cfg.PurgeKernelLat /= dilation
	cfg.L1FlushLineLat = max64(1, cfg.L1FlushLineLat/dilation)
	cfg.TLBFlushLat /= dilation
	cfg.RehomePageLat = max64(1, cfg.RehomePageLat/dilation)
	cfg.ProtocolDilation = dilation
	return cfg
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Abs returns the absolute value of x. Mesh-geometry code across the
// packages shares this helper (hop counts and Manhattan distances).
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
