package arch

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTileGx72Valid(t *testing.T) {
	cfg := TileGx72()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if got := cfg.Cores(); got != 64 {
		t.Fatalf("Cores() = %d, want 64", got)
	}
	if got := cfg.L1Sets(); got != 64 {
		t.Fatalf("L1Sets() = %d, want 64", got)
	}
	if got := cfg.L2Sets(); got != 512 {
		t.Fatalf("L2Sets() = %d, want 512", got)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	cfg := TileGx72()
	for id := CoreID(0); int(id) < cfg.Cores(); id++ {
		at := cfg.CoordOf(id)
		if back := cfg.CoreAt(at); back != id {
			t.Fatalf("CoreAt(CoordOf(%d)) = %d", id, back)
		}
		if at.X < 0 || at.X >= cfg.MeshWidth || at.Y < 0 || at.Y >= cfg.MeshHeight {
			t.Fatalf("core %d coordinate %v off mesh", id, at)
		}
	}
}

func TestCoordOfKnownPositions(t *testing.T) {
	cfg := TileGx72()
	cases := []struct {
		id   CoreID
		want Coord
	}{
		{0, Coord{0, 0}},
		{7, Coord{7, 0}},
		{8, Coord{0, 1}},
		{63, Coord{7, 7}},
	}
	for _, c := range cases {
		if got := cfg.CoordOf(c.id); got != c.want {
			t.Errorf("CoordOf(%d) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestCycleTimeConversion(t *testing.T) {
	cfg := TileGx72()
	if d := cfg.CyclesToDuration(1_000_000_000); d != time.Second {
		t.Fatalf("1e9 cycles at 1GHz = %v, want 1s", d)
	}
	if cyc := cfg.DurationToCycles(5 * time.Microsecond); cyc != 5_000 {
		t.Fatalf("5us = %d cycles, want 5000", cyc)
	}
}

func TestCycleConversionRoundTrip(t *testing.T) {
	cfg := TileGx72()
	f := func(n uint32) bool {
		cycles := int64(n)
		return cfg.DurationToCycles(cfg.CyclesToDuration(cycles)) == cycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	broken := []func(*Config){
		func(c *Config) { c.MeshWidth = 0 },
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.PageSize = 3000 },
		func(c *Config) { c.L1Ways = 7 },
		func(c *Config) { c.L2Ways = 0 },
		func(c *Config) { c.TLBWays = 5 },
		func(c *Config) { c.MemControllers = 0 },
		func(c *Config) { c.DRAMRegions = 7 },
		func(c *Config) { c.ClockHz = 0 },
	}
	for i, mutate := range broken {
		cfg := TileGx72()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken config", i)
		}
	}
}

func TestDomainString(t *testing.T) {
	if Insecure.String() != "insecure" || Secure.String() != "secure" {
		t.Fatal("domain names changed")
	}
	if Domain(9).String() != "domain(9)" {
		t.Fatal("unknown domain formatting changed")
	}
}

func TestAbs(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 0}, {5, 5}, {-5, 5}, {-1, 1}} {
		if got := Abs(tc.in); got != tc.want {
			t.Errorf("Abs(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
