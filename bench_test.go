// Package ironhide's benchmark harness regenerates every table and figure
// of the paper's evaluation as testing.B benchmarks (scaled down so a
// full -bench=. sweep stays tractable), plus the ablation benches
// DESIGN.md calls out. Key series are emitted through b.ReportMetric:
//
//	BenchmarkTable1Machine      Table I substrate (machine + access path)
//	BenchmarkFig1a              Figure 1a normalized geomeans
//	BenchmarkFig6Completion     Figure 6 completion/breakdown matrix
//	BenchmarkFig7MissRates      Figure 7 L1/L2 miss rates
//	BenchmarkFig8Heuristic      Figure 8 reconfiguration study
//	BenchmarkAttackChannel      covert-channel validation
//	BenchmarkInteractivitySweep input-scale ablation
//	BenchmarkHomingPolicy       hash-for-home vs local homing ablation
//	BenchmarkRoutingIsolation   X-Y vs bidirectional routing ablation
//	BenchmarkPurge              strong-isolation purge cost
//	BenchmarkReconfigBudget     dynamic-hardware-isolation event cost
//	BenchmarkScenarioPhase      multi-tenant timeline engine, per phase
//	BenchmarkScenarioStream     the same timeline with a streaming sink
//	BenchmarkCoTenantReplay     space-shared co-run on disjoint sub-gangs
//	BenchmarkJointSearch        joint-scheduler policy search end to end
//	BenchmarkGridSequential     app×model grid on 1 runner worker
//	BenchmarkGridParallel       the same grid on all host cores
//
// Every matrix benchmark goes through internal/runner — the same
// orchestration path cmd/ironhide-sim uses — so the grid benchmarks
// measure the real parallel speedup of a sweep.
package ironhide

import (
	"io"
	"testing"
	"time"

	"ironhide/internal/apps"
	"ironhide/internal/arch"
	"ironhide/internal/attack"
	"ironhide/internal/cache"
	"ironhide/internal/core"
	"ironhide/internal/driver"
	"ironhide/internal/enclave"
	"ironhide/internal/experiments"
	"ironhide/internal/metrics"
	"ironhide/internal/noc"
	"ironhide/internal/runner"
	"ironhide/internal/scenario"
	"ironhide/internal/sched"
	"ironhide/internal/sim"
	"ironhide/internal/trace"
)

func benchCfg() arch.Config { return arch.TileGx72Scaled(12) }

// benchEC keeps a -bench=. sweep tractable: two representative apps (one
// per interactivity class) at a small scale, gridded across all host
// cores. Use cmd/ironhide-sim for the full nine-app evaluation.
func benchEC() experiments.Config {
	return experiments.Config{
		Scale:    0.04,
		Apps:     []string{"<AES, QUERY>", "<MEMCACHED, OS>"},
		Stride:   16,
		Parallel: runner.DefaultWorkers(),
	}
}

func BenchmarkTable1Machine(b *testing.B) {
	cfg := arch.TileGx72()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		buf := m.NewSpace("bench", arch.Insecure).Alloc("a", 1<<20)
		var lat int64
		for off := 0; off < buf.Size; off += cfg.LineSize {
			lat += m.Access(0, buf.Addr(off), false, arch.Insecure, lat)
		}
		b.ReportMetric(float64(lat)/float64(buf.Size/cfg.LineSize), "cycles/access")
	}
}

// BenchmarkAccessHotPath measures one steady-state Machine.Access on the
// full 64-core machine with routing isolation active — the operation every
// simulated memory reference pays. Run with -benchmem: the allocs/op
// column is the zero-allocation claim (also gated by TestAccessZeroAlloc).
func BenchmarkAccessHotPath(b *testing.B) {
	build := func(b *testing.B) (*sim.Machine, sim.Buffer) {
		cfg := arch.TileGx72()
		m, err := sim.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Part.AssignDomains(0b0011); err != nil {
			b.Fatal(err)
		}
		split, err := noc.NewSplit(32, cfg)
		if err != nil {
			b.Fatal(err)
		}
		m.SetSplit(split, true)
		// Home the whole window on slice 0 so a cyclic walk of twice the
		// slice capacity misses L2 on every steady-state access.
		m.SetHomePolicy(arch.Secure, cache.NewLocalHome())
		m.SetSlices(arch.Secure, []cache.SliceID{0})
		buf := m.NewSpace("bench", arch.Secure).Alloc("a", 2*cfg.L2SliceSize)
		return m, buf
	}
	b.Run("l1-hit", func(b *testing.B) {
		m, buf := build(b)
		addr := buf.Addr(0)
		m.Access(0, addr, false, arch.Secure, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Access(0, addr, false, arch.Secure, int64(i))
		}
	})
	b.Run("l2-miss", func(b *testing.B) {
		m, buf := build(b)
		line := m.Cfg.LineSize
		for off := 0; off < buf.Size; off += line {
			m.Access(0, buf.Addr(off), true, arch.Secure, 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		off := 0
		for i := 0; i < b.N; i++ {
			m.Access(0, buf.Addr(off), true, arch.Secure, int64(i))
			off = (off + line) % buf.Size
		}
	})
}

// BenchmarkSearchProbe measures one heuristic binding-search probe — the
// operation the gradient heuristic runs ~10 times and the Optimal oracle
// 63 times per application — live (fresh app instance + full payload
// execution) versus replayed from a shared capture. The replay/live ratio
// is the record-once/replay-many speedup; the capture sub-benchmark costs
// the one-time recording itself.
//
// Live and capture execute different round counts (a probe runs one
// profile window; a capture records the whole run so every later probe and
// the measured run can replay it), so the sub-benchmarks also report
// ns/round — that is the per-round recording overhead the recorder fast
// path drives below live execution.
func BenchmarkSearchProbe(b *testing.B) {
	cfg := arch.TileGx72()
	entry, ok := apps.ByName("<AES, QUERY>")
	if !ok {
		b.Fatal("catalog missing app")
	}
	opts := driver.Options{Scale: 0.2}
	const candidate = 24
	b.Run("live", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := driver.Profile(cfg, core.New(32), entry.Factory, opts, candidate); err != nil {
				b.Fatal(err)
			}
		}
		pr := entry.Factory().Scaled(0.2).ProfileRounds
		rounds := pr/4 + pr // warmup + measured, mirroring profileLen
		b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N*rounds), "ns/round")
	})
	b.Run("capture", func(b *testing.B) {
		start := time.Now()
		rounds := 0
		for i := 0; i < b.N; i++ {
			tr, err := driver.CaptureTrace(cfg, entry.Factory, opts)
			if err != nil {
				b.Fatal(err)
			}
			rounds = len(tr.Ins.Rounds)
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N*rounds), "ns/round")
	})
	b.Run("replay", func(b *testing.B) {
		tr, err := driver.CaptureTrace(cfg, entry.Factory, opts)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the one-time decode cache; probes share it.
		if _, err := driver.ProfileTrace(cfg, core.New(32), tr, opts, candidate); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := driver.ProfileTrace(cfg, core.New(32), tr, opts, candidate); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOptimalOracle times a full end-to-end Optimal-oracle run —
// exhaustive search plus the measured run — with live payload probes
// versus replayed ones. Chosen bindings and Results are identical (gated
// by TestOptimalReplayMatchesLive); only the wall clock differs.
func BenchmarkOptimalOracle(b *testing.B) {
	cfg := arch.TileGx72()
	entry, ok := apps.ByName("<AES, QUERY>")
	if !ok {
		b.Fatal("catalog missing app")
	}
	run := func(b *testing.B, noReplay bool) {
		for i := 0; i < b.N; i++ {
			res, err := driver.Run(cfg, core.New(32), entry.Factory,
				driver.Options{Scale: 0.1, Optimal: true, OptimalStride: 4, NoReplay: noReplay, Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.SecureCores), "chosen-binding")
		}
	}
	b.Run("live", func(b *testing.B) { run(b, true) })
	b.Run("replay", func(b *testing.B) { run(b, false) })
}

func BenchmarkFig1a(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		mx, err := experiments.RunMatrix(cfg, benchEC())
		if err != nil {
			b.Fatal(err)
		}
		mx.Fig1a(io.Discard)
		base := metrics.Geomean(completions(mx, "Insecure"))
		b.ReportMetric(metrics.Geomean(completions(mx, "SGX"))/base, "sgx-vs-insecure")
		b.ReportMetric(metrics.Geomean(completions(mx, "MI6"))/base, "mi6-vs-insecure")
		b.ReportMetric(metrics.Geomean(completions(mx, "IRONHIDE"))/base, "ironhide-vs-insecure")
	}
}

func completions(mx *experiments.Matrix, model string) []float64 {
	var out []float64
	for _, app := range mx.Order {
		out = append(out, float64(mx.Cells[app][model].Result.CompletionCycles))
	}
	return out
}

func BenchmarkFig6Completion(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		mx, err := experiments.RunMatrix(cfg, benchEC())
		if err != nil {
			b.Fatal(err)
		}
		mx.Fig6(io.Discard)
		mi6 := metrics.Geomean(completions(mx, "MI6"))
		ih := metrics.Geomean(completions(mx, "IRONHIDE"))
		b.ReportMetric(mi6/ih, "mi6-vs-ironhide")
	}
}

func BenchmarkFig7MissRates(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		mx, err := experiments.RunMatrix(cfg, benchEC())
		if err != nil {
			b.Fatal(err)
		}
		mx.Fig7(io.Discard)
		var mi6, ih float64
		for _, app := range mx.Order {
			mi6 += mx.Cells[app]["MI6"].Result.L1MissRate()
			ih += mx.Cells[app]["IRONHIDE"].Result.L1MissRate()
		}
		b.ReportMetric(mi6/ih, "l1-missrate-gain")
	}
}

func BenchmarkFig8Heuristic(b *testing.B) {
	cfg := benchCfg()
	ec := experiments.Config{Scale: 0.03, Apps: []string{"<AES, QUERY>"}, Stride: 20}
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig8(cfg, ec, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		leak, err := attack.CovertChannel(enclave.SGXLike{}, 48, 42)
		if err != nil {
			b.Fatal(err)
		}
		dead, err := attack.CovertChannel(core.New(32), 48, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(leak.Accuracy(), "sgx-bit-accuracy")
		b.ReportMetric(dead.Accuracy(), "ironhide-bit-accuracy")
	}
}

func BenchmarkInteractivitySweep(b *testing.B) {
	cfg := benchCfg()
	ec := experiments.Config{Scale: 1, Apps: []string{"<MEMCACHED, OS>"}}
	for i := 0; i < b.N; i++ {
		points, err := experiments.Sweep(cfg, ec, []int{20, 60}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[len(points)-2].PurgeShare, "mi6-purge-share")
	}
}

// Ablation: the local homing policy MI6/IRONHIDE need versus the
// platform's default hash-for-home, measured as average access latency of
// a strided walk.
func BenchmarkHomingPolicy(b *testing.B) {
	cfg := arch.TileGx72()
	run := func(local bool) float64 {
		m, err := sim.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if local {
			m.SetHomePolicy(arch.Insecure, cache.NewLocalHome())
			slices := make([]cache.SliceID, 8)
			for i := range slices {
				slices[i] = cache.SliceID(i)
			}
			m.SetSlices(arch.Insecure, slices)
		}
		buf := m.NewSpace("bench", arch.Insecure).Alloc("a", 2<<20)
		var lat int64
		n := 0
		for off := 0; off < buf.Size; off += cfg.LineSize {
			lat += m.Access(0, buf.Addr(off), false, arch.Insecure, lat)
			n++
		}
		return float64(lat) / float64(n)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "hash-cycles/access")
		b.ReportMetric(run(true), "local-cycles/access")
	}
}

// Ablation: bidirectional X-Y/Y-X routing versus X-Y-only containment
// failures across every contiguous split.
func BenchmarkRoutingIsolation(b *testing.B) {
	cfg := arch.TileGx72()
	for i := 0; i < b.N; i++ {
		var xyFails, bidirFails int
		for secure := 1; secure < cfg.Cores(); secure++ {
			split, err := noc.NewSplit(secure, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, cl := range []noc.Cluster{noc.SecureCluster, noc.InsecureCluster} {
				member := split.Member(cl)
				cores := split.Cores(cl)
				for _, src := range cores {
					for _, dst := range cores {
						p := noc.Path(cfg.CoordOf(src), cfg.CoordOf(dst), noc.XY)
						if !noc.Contained(p, member) {
							xyFails++
						}
						if _, _, err := noc.Route(cfg.CoordOf(src), cfg.CoordOf(dst), member); err != nil {
							bidirFails++
						}
					}
				}
			}
		}
		if bidirFails != 0 {
			b.Fatalf("bidirectional routing failed containment %d times", bidirFails)
		}
		b.ReportMetric(float64(xyFails), "xy-only-violations")
	}
}

// Ablation: the full strong-isolation purge (the MI6 per-interaction
// cost) at full protocol fidelity.
func BenchmarkPurge(b *testing.B) {
	cfg := arch.TileGx72()
	m, err := sim.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mi6 := enclave.MulticoreMI6{}
	if err := mi6.Configure(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cost int64
	for i := 0; i < b.N; i++ {
		cost = mi6.EnterSecure(m)
	}
	b.ReportMetric(float64(cost)/1e6, "ms-per-purge")
}

// Ablation: the cost of one dynamic hardware isolation event versus the
// number of cores moved (the paper's ~15 ms one-time overhead).
func BenchmarkReconfigBudget(b *testing.B) {
	cfg := arch.TileGx72()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ih := core.New(32)
		if err := ih.Configure(m); err != nil {
			b.Fatal(err)
		}
		m.NewSpace("enclave", arch.Secure).Alloc("data", 8<<20)
		m.NewSpace("ordinary", arch.Insecure).Alloc("data", 8<<20)
		res, err := ih.Reconfigure(m, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles)/1e6, "ms-per-reconfig")
		b.ReportMetric(float64(res.PagesMoved), "pages-moved")
	}
}

// BenchmarkScenarioPhase measures the multi-tenant timeline engine: one
// fixed resize-heavy scenario per iteration, reported per phase. The
// timeline covers the engine's whole surface — admission, binding search
// over a cached trace, a budget-denied load shift, a purged resize, and
// the per-phase tenant replays.
func BenchmarkScenarioPhase(b *testing.B) {
	cfg := benchCfg()
	spec := scenario.Spec{
		Seed: 42, Scale: 0.05, Apps: []string{"aes-query", "sssp-graph"},
		Timeline: []scenario.Event{
			{Kind: scenario.Arrive, App: "aes-query"},
			{Kind: scenario.LoadShift, App: "aes-query", Factor: 2},
			{Kind: scenario.Arrive, App: "sssp-graph"},
			{Kind: scenario.Depart, App: "aes-query"},
		},
	}
	b.ReportAllocs()
	var rep *scenario.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = scenario.Run(cfg, spec, scenario.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.TotalPurgeCycles <= 0 || rep.RouteViolations != 0 {
		b.Fatalf("implausible scenario: purge=%d violations=%d", rep.TotalPurgeCycles, rep.RouteViolations)
	}
	phases := float64(len(rep.Phases))
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/phases/1e6, "ms-per-phase")
	b.ReportMetric(float64(rep.TotalPurgeCycles)/phases, "purge-cycles-per-phase")
}

// BenchmarkScenarioStream runs BenchmarkScenarioPhase's timeline with a
// streaming event sink attached, measuring what live event emission adds
// on top of the blocking engine (the sink is the service's /v1/scenario
// stream path minus HTTP framing).
func BenchmarkScenarioStream(b *testing.B) {
	cfg := benchCfg()
	spec := scenario.Spec{
		Seed: 42, Scale: 0.05, Apps: []string{"aes-query", "sssp-graph"},
		Timeline: []scenario.Event{
			{Kind: scenario.Arrive, App: "aes-query"},
			{Kind: scenario.LoadShift, App: "aes-query", Factor: 2},
			{Kind: scenario.Arrive, App: "sssp-graph"},
			{Kind: scenario.Depart, App: "aes-query"},
		},
	}
	b.ReportAllocs()
	var rep *scenario.Report
	var events int
	for i := 0; i < b.N; i++ {
		events = 0
		var err error
		rep, err = scenario.Run(cfg, spec, scenario.Options{
			Sink: func(scenario.StreamEvent) { events++ },
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if events <= len(rep.Phases) {
		b.Fatalf("implausible stream: %d events for %d phases", events, len(rep.Phases))
	}
	b.ReportMetric(float64(events), "events-per-run")
}

// benchGrid measures one full app×model matrix at the given worker
// count; comparing the two benchmarks shows the runner's wall-clock
// speedup on this host.
func benchGrid(b *testing.B, workers int) {
	cfg := benchCfg()
	ec := benchEC()
	ec.Parallel = workers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mx, err := experiments.RunMatrix(cfg, ec)
		if err != nil {
			b.Fatal(err)
		}
		if len(mx.Order) != 2 {
			b.Fatalf("matrix has %d apps", len(mx.Order))
		}
	}
}

func BenchmarkGridSequential(b *testing.B) { benchGrid(b, 1) }

func BenchmarkGridParallel(b *testing.B) { benchGrid(b, runner.DefaultWorkers()) }

// End-to-end guardrail: the paper's headline must hold at bench scale.
func BenchmarkHeadlineClaim(b *testing.B) {
	cfg := benchCfg()
	entry, ok := apps.ByName("<MEMCACHED, OS>")
	if !ok {
		b.Fatal("catalog missing app")
	}
	for i := 0; i < b.N; i++ {
		mi6, err := driver.Run(cfg, enclave.MulticoreMI6{}, entry.Factory, driver.Options{Scale: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		ih, err := driver.Run(cfg, core.New(32), entry.Factory, driver.Options{Scale: 0.05, FixedSecureCores: 24})
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(mi6.CompletionCycles) / float64(ih.CompletionCycles)
		if ratio < 1.5 {
			b.Fatalf("MI6/IRONHIDE = %.2f; the headline claim collapsed", ratio)
		}
		b.ReportMetric(ratio, "mi6-vs-ironhide")
	}
}

// benchTenants captures the two representative apps once and packs them
// with the interference-aware policy — the same partition path the joint
// scheduler and the co-tenant scenario engine use.
func benchTenants(b *testing.B, cfg arch.Config, scale float64) (sched.Resources, []driver.CoTenant) {
	b.Helper()
	var tenants []sched.Tenant
	for _, name := range []string{"<AES, QUERY>", "<MEMCACHED, OS>"} {
		entry, ok := apps.ByName(name)
		if !ok {
			b.Fatal("catalog missing app")
		}
		tr, err := driver.CaptureTrace(cfg, entry.Factory, driver.Options{Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		tenants = append(tenants, sched.Tenant{Name: entry.Alias, Trace: tr})
	}
	res, err := sched.MachineResources(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	part, err := sched.InterferenceAware{}.Partition(res, []int{16, 16})
	if err != nil {
		b.Fatal(err)
	}
	return res, part.CoTenants(tenants)
}

// BenchmarkCoTenantReplay measures one space-shared co-run: two mutually
// distrusting tenants replaying *simultaneously* on disjoint sub-gangs of
// one machine with cross-tenant NoC contention tracking on.
func BenchmarkCoTenantReplay(b *testing.B) {
	cfg := benchCfg()
	const scale = 0.05
	res, cotenants := benchTenants(b, cfg, scale)
	b.ReportAllocs()
	b.ResetTimer()
	var co *driver.CoRunResult
	for i := 0; i < b.N; i++ {
		var err error
		co, err = driver.CoRunTraces(cfg, cotenants, driver.CoRunOptions{
			Scale: scale, SecureCores: res.SecureCores, Contention: true, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if co.TotalCycles <= 0 || co.RouteViolations != 0 {
		b.Fatalf("implausible co-run: cycles=%d violations=%d", co.TotalCycles, co.RouteViolations)
	}
	var conflicts int64
	for _, t := range co.Tenants {
		conflicts += t.LinkConflicts
	}
	b.ReportMetric(float64(conflicts), "link-conflicts")
	b.ReportMetric(float64(co.TotalCycles)/1e6, "mcycles-horizon")
}

// BenchmarkJointSearch measures the full joint-scheduler pipeline: the
// per-tenant demand searches, every packing policy's partition, and each
// partition's scoring co-runs (one fully active plus one single-active
// baseline per tenant), fanned out over all host cores.
func BenchmarkJointSearch(b *testing.B) {
	cfg := benchCfg()
	const scale = 0.04
	var tenants []sched.Tenant
	for _, name := range []string{"<AES, QUERY>", "<MEMCACHED, OS>"} {
		entry, ok := apps.ByName(name)
		if !ok {
			b.Fatal("catalog missing app")
		}
		tr, err := driver.CaptureTrace(cfg, entry.Factory, driver.Options{Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		tenants = append(tenants, sched.Tenant{Name: entry.Alias, Trace: tr})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep *sched.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = sched.JointSearch(cfg, tenants, sched.Options{
			Scale: scale, Workers: runner.DefaultWorkers(), Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rep.Policies) != 3 || rep.Best == "" {
		b.Fatalf("implausible report: best %q over %d policies", rep.Best, len(rep.Policies))
	}
	b.ReportMetric(rep.Policies[0].Throughput, "best-throughput")
	b.ReportMetric(rep.Policies[0].Fairness, "best-fairness")
}

// BenchmarkTraceDecode measures the varint codec over a real capture —
// the validation cost a service pays on every untrusted trace upload, and
// the first of the two once-per-trace passes replay performs (decode, then
// lowering).
func BenchmarkTraceDecode(b *testing.B) {
	entry, ok := apps.ByName("<AES, QUERY>")
	if !ok {
		b.Fatal("catalog missing app")
	}
	tr, err := driver.CaptureTrace(arch.TileGx72(), entry.Factory, driver.Options{Scale: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayPlanLower measures the full once-per-(trace, gang size)
// plan build — decode, marker stripping, and run-table resolution — that
// every probe of a binding search amortizes. Clone presents the trace the
// way a fresh deserialization would, so each iteration pays the whole
// pipeline.
func BenchmarkReplayPlanLower(b *testing.B) {
	entry, ok := apps.ByName("<AES, QUERY>")
	if !ok {
		b.Fatal("catalog missing app")
	}
	tr, err := driver.CaptureTrace(arch.TileGx72(), entry.Factory, driver.Options{Scale: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := tr.Clone()
		for _, p := range []*trace.Proc{&cp.Ins, &cp.Sec} {
			if n := p.Lower(24); n == 0 {
				b.Fatal("empty plan")
			}
		}
	}
}
